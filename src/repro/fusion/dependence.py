"""Dependencies between point tasks and index tasks (paper Section 4.1).

These definitions mirror paper Definitions 1–3 directly.  They enumerate
point tasks and intersect sub-stores, so their cost grows with the launch
domain — the *scale-aware* computation the scale-free constraints of
:mod:`repro.fusion.constraints` exist to avoid.  Diffuse itself never
calls them during fusion; they are the ground truth that the property
tests compare the constraint-based analysis against.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.ir.domain import Point
from repro.ir.task import IndexTask, PointTask, SubStore


def point_tasks_depend(first: PointTask, second: PointTask) -> bool:
    """Definition 1: ``second`` (issued later) depends on ``first``.

    True when there exist intersecting sub-stores of the same parent store
    such that the pair of accesses forms a true, anti or reduction
    dependence.  Two reads, or two reductions (with the same operator, the
    only kind modelled), do not conflict.
    """
    for sub1, priv1 in first.arguments():
        for sub2, priv2 in second.arguments():
            if sub1.store != sub2.store:
                continue
            if not sub1.intersects(sub2):
                continue
            # true dependence: W -> R/W/Rd
            if priv1.writes and (priv2.reads or priv2.writes or priv2.reduces):
                return True
            # anti dependence: R -> W/Rd
            if priv1.reads and (priv2.writes or priv2.reduces):
                return True
            # reduction dependence: Rd -> R/W
            if priv1.reduces and (priv2.reads or priv2.writes):
                return True
    return False


def dependence_map(first: IndexTask, second: IndexTask) -> Dict[Point, Set[Point]]:
    """Definition 2: the full dependence map D(first, second).

    Maps every point ``p`` of ``first``'s launch domain to the set of
    points ``p'`` of ``second``'s launch domain whose point task depends on
    ``first``'s point task at ``p``.
    """
    mapping: Dict[Point, Set[Point]] = {}
    for p in first.launch_domain.points():
        source = first.point_task(p)
        dependents: Set[Point] = set()
        for q in second.launch_domain.points():
            if point_tasks_depend(source, second.point_task(q)):
                dependents.add(q)
        mapping[p] = dependents
    return mapping


def tasks_fusible_bruteforce(first: IndexTask, second: IndexTask) -> bool:
    """Definition 3: all dependencies between the tasks are point-wise."""
    if first.launch_domain != second.launch_domain:
        return False
    for p, dependents in dependence_map(first, second).items():
        if not dependents <= {p}:
            return False
    return True


def sequence_fusible_bruteforce(tasks) -> bool:
    """Pairwise brute-force fusibility of an ordered task sequence."""
    tasks = list(tasks)
    for i in range(len(tasks)):
        for j in range(i + 1, len(tasks)):
            if not tasks_fusible_bruteforce(tasks[i], tasks[j]):
                return False
    return True
