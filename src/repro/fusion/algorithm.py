"""The fusible-prefix algorithm and fused-task construction (paper §4.2).

The algorithm greedily applies the fusion constraints to the task window:
tasks join the candidate prefix one at a time until a task violates a
constraint (or cannot be kernel-fused because it has no generator).  The
identified prefix is then replaced by a single fused task whose argument
list is the union of its constituents' arguments (with privileges
promoted) minus the stores demoted to temporaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.ir.store import Store
from repro.ir.task import FusedTask, IndexTask, combine_arguments
from repro.fusion.constraints import ConstraintViolation, FusionConstraintChecker
from repro.fusion.temporaries import find_temporary_stores


@dataclass
class PrefixResult:
    """Outcome of the fusible-prefix search over one window."""

    prefix_length: int
    violation: Optional[ConstraintViolation]

    @property
    def fusible(self) -> bool:
        """True when at least two tasks fused."""
        return self.prefix_length >= 2


def find_fusible_prefix(
    tasks: Sequence[IndexTask],
    can_kernel_fuse: Callable[[IndexTask], bool] = lambda task: True,
) -> PrefixResult:
    """The longest prefix of ``tasks`` satisfying all fusion constraints.

    ``can_kernel_fuse`` filters out tasks that are sound to fuse at the
    task level but cannot participate in kernel fusion (no registered
    generator); such a task terminates the prefix — unless it is the very
    first task, in which case the prefix is that single task, which will
    simply be forwarded unfused.
    """
    if not tasks:
        return PrefixResult(prefix_length=0, violation=None)

    checker = FusionConstraintChecker()
    length = 0
    violation: Optional[ConstraintViolation] = None
    for task in tasks:
        if not can_kernel_fuse(task):
            if length == 0:
                length = 1
            violation = ConstraintViolation(
                "kernel-generator", f"task '{task.task_name}' has no kernel generator"
            )
            break
        violation = checker.violation(task)
        if violation is not None:
            break
        checker.add(task)
        length += 1
    if length == 0:
        # The very first task violated a constraint against the empty
        # prefix; that cannot happen (the checker accepts any first task),
        # but guard against it so the engine always makes progress.
        length = 1
    return PrefixResult(prefix_length=length, violation=violation)


def build_fused_task(
    prefix: Sequence[IndexTask],
    temporaries: Sequence[Store],
    task_name: Optional[str] = None,
) -> FusedTask:
    """Construct the fused task standing for ``prefix`` (paper §4.2.2)."""
    if len(prefix) < 2:
        raise ValueError("a fused task requires at least two constituents")
    args = combine_arguments(prefix, temporaries)
    return FusedTask(
        constituents=prefix,
        args=args,
        temporary_stores=temporaries,
        task_name=task_name,
    )


def plan_window(
    tasks: Sequence[IndexTask],
    can_kernel_fuse: Callable[[IndexTask], bool],
    eliminate_temporaries: bool = True,
) -> Tuple[PrefixResult, List[Store]]:
    """Find the fusible prefix of a window and its temporary stores."""
    result = find_fusible_prefix(tasks, can_kernel_fuse)
    if not result.fusible or not eliminate_temporaries:
        return result, []
    prefix = list(tasks[: result.prefix_length])
    remainder = list(tasks[result.prefix_length :])
    temporaries = find_temporary_stores(prefix, remainder)
    return result, temporaries
