"""Temporary store elimination (paper Section 5.1, Definition 4).

Once a fusible prefix has been identified, stores whose entire lifetime is
contained inside the fused task can be demoted from distributed
allocations to task-local data (and then usually eliminated outright by
the kernel compiler).  A store ``S`` is temporary in the fusion of the
prefix when:

1. every read of ``S`` inside the prefix is preceded by a write to ``S``
   through the *same* partition that covers the whole store (so the fused
   task never needs pre-existing contents of ``S``),
2. no task after the prefix (the rest of the analysed window) reads or
   reduces ``S``, and
3. the application holds no live references to ``S`` (checked through the
   split reference counting scheme of :class:`repro.ir.store.Store`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.ir.store import Store
from repro.ir.task import IndexTask


def find_temporary_stores(
    prefix: Sequence[IndexTask],
    remainder: Sequence[IndexTask] = (),
) -> List[Store]:
    """Stores of the prefix that satisfy Definition 4.

    ``prefix`` is the fusible prefix about to be fused; ``remainder`` is
    the rest of the task window (tasks already submitted but not part of
    the fused task).  Stores still referenced by the application or by the
    remainder are never temporaries.
    """
    candidates: Dict[int, Store] = {}
    for task in prefix:
        for store in task.stores():
            candidates.setdefault(store.uid, store)

    # Condition 2: downstream tasks must not observe the store.
    observed_later: Set[int] = set()
    for task in remainder:
        for store, _partition, privilege in task.views():
            if privilege.reads or privilege.reduces:
                observed_later.add(store.uid)

    temporaries: List[Store] = []
    for store in candidates.values():
        if store.uid in observed_later:
            continue
        # Condition 3: split reference counting — no live application refs.
        if store.has_live_application_references:
            continue
        if not _contents_created_within(store, prefix):
            continue
        temporaries.append(store)
    return temporaries


def _contents_created_within(store: Store, prefix: Sequence[IndexTask]) -> bool:
    """Condition 1: reads of the store only see values produced in the prefix.

    A forwards scan over the prefix tracks whether the store has been
    fully defined (written through a covering partition).  Any read or
    reduction before that point means the fused task would need the
    store's prior contents, so it cannot be demoted.  A store that is only
    written (never read) inside the prefix trivially satisfies the
    condition, and a store that is never written is not temporary (the
    written data must come from somewhere).
    """
    fully_defined = False
    written_at_all = False
    for task in prefix:
        arguments = [view for view in task.views() if view[0] == store]
        # Reads of a task observe the store's state before the task runs,
        # so evaluate all read checks before applying the task's writes.
        for _store, _partition, privilege in arguments:
            if (privilege.reads or privilege.reduces) and not fully_defined:
                return False
        for _store, partition, privilege in arguments:
            if privilege.writes:
                written_at_all = True
                if partition.covers(store.shape, task.launch_domain):
                    fully_defined = True
    return written_at_all
