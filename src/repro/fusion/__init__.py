"""Distributed task fusion (paper Sections 4 and 5).

The fusion subsystem buffers index tasks into a window, finds the longest
fusible prefix using four scale-free constraints (launch-domain
equivalence, true dependence, anti dependence, reduction), replaces the
prefix with a fused task, demotes temporary stores to task-local data, and
memoizes the whole analysis on a canonical (alpha-equivalent)
representation of the task stream.

:class:`~repro.fusion.engine.DiffuseRuntime` is the user-facing middle
layer: libraries submit index tasks to it exactly as they would to Legion,
and it forwards optimised tasks to the underlying
:class:`~repro.runtime.runtime.LegionRuntime`.
"""

from repro.fusion.constraints import ConstraintViolation, FusionConstraintChecker, check_sequence
from repro.fusion.dependence import (
    dependence_map,
    point_tasks_depend,
    tasks_fusible_bruteforce,
)
from repro.fusion.engine import DiffuseRuntime, FusionConfig
from repro.fusion.memoization import MemoizationCache, canonicalize_window
from repro.fusion.temporaries import find_temporary_stores

__all__ = [
    "ConstraintViolation",
    "FusionConstraintChecker",
    "check_sequence",
    "dependence_map",
    "point_tasks_depend",
    "tasks_fusible_bruteforce",
    "DiffuseRuntime",
    "FusionConfig",
    "MemoizationCache",
    "canonicalize_window",
    "find_temporary_stores",
]
