"""Tests for dependence analysis, fusion constraints and the prefix algorithm.

Includes the key soundness property test: whenever the scale-free
constraint checker accepts a sequence of tasks, the brute-force dependence
maps of paper Definitions 1-3 confirm that all dependencies are point-wise.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.domain import Domain, Rect
from repro.ir.partition import Replication, Tiling, natural_tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.fusion.algorithm import build_fused_task, find_fusible_prefix, plan_window
from repro.fusion.constraints import FusionConstraintChecker, check_sequence
from repro.fusion.dependence import (
    dependence_map,
    point_tasks_depend,
    sequence_fusible_bruteforce,
    tasks_fusible_bruteforce,
)
from repro.fusion.temporaries import find_temporary_stores


def _stencil_views(store, launch, n):
    """Offset views of an (n+2, n+2) grid as in paper Figure 1."""
    tile = (n // launch.shape[0], n // launch.shape[1])

    def view(offset):
        bounds = Rect(offset, (offset[0] + n, offset[1] + n))
        return Tiling.create(tile, offset=offset, bounds=bounds)

    return {
        "center": view((1, 1)),
        "north": view((0, 1)),
        "south": view((2, 1)),
        "east": view((1, 2)),
        "west": view((1, 0)),
    }


class TestDependence:
    def test_pointwise_dependence(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        writer = IndexTask("fill", launch4, [StoreArg(a, part, Privilege.WRITE)], (1.0,))
        reader = IndexTask("copy", launch4, [StoreArg(a, part, Privilege.READ),
                                             StoreArg(b, part, Privilege.WRITE)])
        mapping = dependence_map(writer, reader)
        assert all(deps == {p} for p, deps in mapping.items())
        assert tasks_fusible_bruteforce(writer, reader)

    def test_cross_point_dependence_from_aliasing_partitions(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        row = natural_tiling((8,), launch4)
        replicated = Replication()
        writer = IndexTask("fill", launch4, [StoreArg(a, row, Privilege.WRITE)], (1.0,))
        reader = IndexTask("sum_reduce", launch4, [StoreArg(a, replicated, Privilege.READ)])
        mapping = dependence_map(writer, reader)
        # Every reader point depends on every writer point: not point-wise.
        assert any(deps != {p} for p, deps in mapping.items())
        assert not tasks_fusible_bruteforce(writer, reader)

    def test_reads_never_conflict(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        r1 = IndexTask("copy", launch4, [StoreArg(a, part, Privilege.READ)])
        r2 = IndexTask("copy", launch4, [StoreArg(a, Replication(), Privilege.READ)])
        assert not point_tasks_depend(r1.point_task((0,)), r2.point_task((1,)))

    def test_different_launch_domains_not_fusible(self, store_manager):
        a = store_manager.create_store((8,))
        t1 = IndexTask("fill", Domain((4,)), [StoreArg(a, natural_tiling((8,), Domain((4,))), Privilege.WRITE)], (0.0,))
        t2 = IndexTask("fill", Domain((2,)), [StoreArg(a, natural_tiling((8,), Domain((2,))), Privilege.WRITE)], (0.0,))
        assert not tasks_fusible_bruteforce(t1, t2)


class TestConstraintChecker:
    def _task(self, store, partition, privilege, launch, redop=None):
        return IndexTask("t", launch, [StoreArg(store, partition, privilege, redop)])

    def test_same_partition_chain_accepted(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        checker = FusionConstraintChecker()
        checker.add(self._task(a, part, Privilege.WRITE, launch4))
        assert checker.can_add(self._task(a, part, Privilege.READ, launch4))
        assert checker.can_add(self._task(a, part, Privilege.WRITE, launch4))

    def test_true_dependence_rejected(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        checker = FusionConstraintChecker()
        checker.add(self._task(a, natural_tiling((8,), launch4), Privilege.WRITE, launch4))
        candidate = self._task(a, Replication(), Privilege.READ, launch4)
        violation = checker.violation(candidate)
        assert violation is not None and violation.constraint == "true-dependence"

    def test_anti_dependence_rejected(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        checker = FusionConstraintChecker()
        checker.add(self._task(a, Replication(), Privilege.READ, launch4))
        candidate = self._task(a, natural_tiling((8,), launch4), Privilege.WRITE, launch4)
        violation = checker.violation(candidate)
        assert violation is not None and violation.constraint == "anti-dependence"

    def test_reduction_rejected_both_directions(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        checker = FusionConstraintChecker()
        checker.add(self._task(a, part, Privilege.REDUCE, launch4, ReductionOp.ADD))
        violation = checker.violation(self._task(a, part, Privilege.READ, launch4))
        assert violation is not None and violation.constraint == "reduction"

        checker2 = FusionConstraintChecker()
        checker2.add(self._task(a, part, Privilege.READ, launch4))
        violation2 = checker2.violation(self._task(a, part, Privilege.REDUCE, launch4, ReductionOp.ADD))
        assert violation2 is not None and violation2.constraint == "reduction"

    def test_multiple_reductions_allowed(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        checker = FusionConstraintChecker()
        checker.add(self._task(a, part, Privilege.REDUCE, launch4, ReductionOp.ADD))
        assert checker.can_add(self._task(a, Replication(), Privilege.REDUCE, launch4, ReductionOp.ADD))

    def test_launch_domain_mismatch_rejected(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        checker = FusionConstraintChecker()
        checker.add(self._task(a, natural_tiling((8,), launch4), Privilege.READ, launch4))
        other = Domain((2,))
        violation = checker.violation(self._task(a, natural_tiling((8,), other), Privilege.READ, other))
        assert violation is not None and violation.constraint == "launch-domain-equivalence"

    def test_add_rejected_task_raises(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        checker = FusionConstraintChecker()
        checker.add(self._task(a, natural_tiling((8,), launch4), Privilege.WRITE, launch4))
        with pytest.raises(ValueError):
            checker.add(self._task(a, Replication(), Privilege.READ, launch4))

    def test_incremental_matches_direct_definition(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        tasks = [
            IndexTask("add", launch4, [StoreArg(a, part, Privilege.READ),
                                       StoreArg(b, part, Privilege.WRITE)]),
            IndexTask("mul", launch4, [StoreArg(b, part, Privilege.READ),
                                       StoreArg(a, part, Privilege.WRITE)]),
        ]
        assert check_sequence(tasks) is None
        checker = FusionConstraintChecker()
        for task in tasks:
            assert checker.can_add(task)
            checker.add(task)


class TestStencilScenario:
    """The paper's motivating example (Figure 1)."""

    def _tasks(self, store_manager, n=8, grid_launch=Domain((2, 2))):
        grid = store_manager.create_store((n + 2, n + 2), name="grid")
        views = _stencil_views(grid, grid_launch, n)
        temps = [store_manager.create_store((n, n), name=f"t{i}") for i in range(3)]
        avg = store_manager.create_store((n, n), name="avg")
        work = store_manager.create_store((n, n), name="work")
        fresh = natural_tiling((n, n), grid_launch)

        def add(in1_part, in1, in2_part, in2, out):
            return IndexTask("add", grid_launch, [
                StoreArg(in1, in1_part, Privilege.READ),
                StoreArg(in2, in2_part, Privilege.READ),
                StoreArg(out, fresh, Privilege.WRITE),
            ])

        tasks = [
            add(views["center"], grid, views["north"], grid, temps[0]),
            add(fresh, temps[0], views["east"], grid, temps[1]),
            add(fresh, temps[1], views["west"], grid, temps[2]),
            add(fresh, temps[2], views["south"], grid, avg),
            IndexTask("multiply_scalar", grid_launch, [
                StoreArg(avg, fresh, Privilege.READ),
                StoreArg(work, fresh, Privilege.WRITE),
            ], (0.2,)),
            IndexTask("copy", grid_launch, [
                StoreArg(work, fresh, Privilege.READ),
                StoreArg(grid, views["center"], Privilege.WRITE),
            ]),
        ]
        return tasks, grid, work

    def test_copy_back_excluded_from_prefix(self, store_manager):
        """Diffuse fuses the adds and the multiply but not center[:] = work."""
        tasks, grid, work = self._tasks(store_manager)
        result = find_fusible_prefix(tasks)
        assert result.prefix_length == 5
        assert result.violation is not None
        assert result.violation.constraint == "anti-dependence"
        # The brute-force definition agrees that the 5-task prefix is fusible.
        assert sequence_fusible_bruteforce(tasks[:5])
        assert not sequence_fusible_bruteforce(tasks)

    def test_temporaries_of_the_stencil(self, store_manager):
        tasks, grid, work = self._tasks(store_manager)
        work.add_application_reference()  # the application still holds `work`
        prefix = tasks[:5]
        temps = find_temporary_stores(prefix, tasks[5:])
        names = {store.name for store in temps}
        # t1..t3 and avg vanish; work is read by the pending copy and kept.
        assert names == {"t0", "t1", "t2", "avg"}

    def test_fused_task_construction(self, store_manager):
        tasks, grid, work = self._tasks(store_manager)
        result, temps = plan_window(tasks, can_kernel_fuse=lambda t: True)
        fused = build_fused_task(tasks[: result.prefix_length], temps)
        assert fused.constituent_count() == 5
        temp_ids = {store.uid for store in temps}
        assert all(arg.store.uid not in temp_ids for arg in fused.args)
        # The grid is read through its five aliasing views but never written.
        grid_args = fused.args_for_store(grid)
        assert len(grid_args) == 5
        assert all(arg.privilege is Privilege.READ for arg in grid_args)


class TestPrefixAlgorithm:
    def test_opaque_head_runs_alone(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        opaque = IndexTask("spmv_csr", launch4, [StoreArg(a, part, Privilege.READ)])
        elementwise = IndexTask("fill", launch4, [StoreArg(a, part, Privilege.WRITE)], (0.0,))
        result = find_fusible_prefix([opaque, elementwise], can_kernel_fuse=lambda t: t.task_name != "spmv_csr")
        assert result.prefix_length == 1
        assert not result.fusible

    def test_opaque_tail_ends_prefix(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        t1 = IndexTask("fill", launch4, [StoreArg(a, part, Privilege.WRITE)], (0.0,))
        t2 = IndexTask("copy", launch4, [StoreArg(a, part, Privilege.READ), StoreArg(b, part, Privilege.WRITE)])
        opaque = IndexTask("spmv_csr", launch4, [StoreArg(b, part, Privilege.READ)])
        result = find_fusible_prefix([t1, t2, opaque], can_kernel_fuse=lambda t: t.task_name != "spmv_csr")
        assert result.prefix_length == 2

    def test_empty_window(self):
        assert find_fusible_prefix([]).prefix_length == 0

    def test_build_fused_task_requires_two(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        task = IndexTask("fill", launch4, [StoreArg(a, part, Privilege.WRITE)], (0.0,))
        with pytest.raises(ValueError):
            build_fused_task([task], [])


# ----------------------------------------------------------------------
# Property test: the scale-free constraints are sound with respect to the
# brute-force dependence maps (paper Theorem 1, part 1).
# ----------------------------------------------------------------------
@st.composite
def random_task_streams(draw):
    """Random streams of tasks over a small pool of stores and partitions."""
    manager = StoreManager()
    launch = Domain((draw(st.sampled_from([2, 4])),))
    extent = 8
    stores = [manager.create_store((extent,)) for _ in range(draw(st.integers(2, 4)))]
    partitions = [
        natural_tiling((extent,), launch),
        Replication(),
        Tiling.create((1,), offset=(2,)),
        Tiling.create((2,), offset=(1,)),
    ]
    privileges = [Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE, Privilege.REDUCE]
    n_tasks = draw(st.integers(2, 5))
    tasks = []
    for index in range(n_tasks):
        n_args = draw(st.integers(1, 3))
        args = []
        for _ in range(n_args):
            store = draw(st.sampled_from(stores))
            partition = draw(st.sampled_from(partitions))
            privilege = draw(st.sampled_from(privileges))
            redop = ReductionOp.ADD if privilege is Privilege.REDUCE else None
            args.append(StoreArg(store, partition, privilege, redop))
        tasks.append(IndexTask(f"task{index}", launch, args))
    return tasks


@settings(max_examples=60, deadline=None)
@given(random_task_streams())
def test_constraints_sound_against_bruteforce(tasks):
    """If the constraints accept a prefix, every pairwise dependence is point-wise."""
    result = find_fusible_prefix(tasks)
    prefix = tasks[: result.prefix_length]
    if len(prefix) >= 2:
        assert sequence_fusible_bruteforce(prefix)
