"""Epoch super-kernels (``REPRO_SUPERKERNEL``).

Acceptance bar: lowering captured plans into fused compiled units must
be invisible to every observable — buffers, checksums and simulated
seconds stay bit-identical across ``REPRO_SUPERKERNEL`` × worker-pool
width × point-dispatch width × dispatch substrate, asserted under the
differential kernel backend (which additionally runs every fused call
in verify mode against its constituent steps).  On top of parity, the
pass must actually fuse: vertical splices fold dead intermediates into
locals, independent same-level steps merge horizontally, fused units
ship to worker processes, and the CG replay path must drop its
compiled-closure calls per epoch by at least 3x.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.fusion.engine import FusionConfig
from repro.runtime import superkernel as superkernel_module


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    """Zero both dispatch thresholds so tiny launches hit the pool."""
    import repro.runtime.executor as executor_module
    import repro.runtime.scheduler as scheduler_module

    monkeypatch.setattr(executor_module, "MIN_POINT_DISPATCH_VOLUME", 0)
    monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)


# ----------------------------------------------------------------------
# Flag plumbing.
# ----------------------------------------------------------------------
class TestSuperkernelConfig:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUPERKERNEL", raising=False)
        config.reload_flags()
        assert config.superkernel_enabled() is True

    def test_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERKERNEL", "0")
        config.reload_flags()
        assert config.superkernel_enabled() is False


# ----------------------------------------------------------------------
# End-to-end parity: the hammer matrix.
# ----------------------------------------------------------------------
def _run_app(
    app_name,
    monkeypatch,
    iterations,
    superkernel="1",
    workers=1,
    point_workers=1,
    backend="thread",
    kernel_backend="differential",
    **app_kwargs,
):
    monkeypatch.setenv("REPRO_SUPERKERNEL", superkernel)
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_DISPATCH_BACKEND", backend)
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", kernel_backend)
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application(app_name, context=context, **app_kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


#: (superkernel, workers, point_workers, backend) corners of the hammer
#: matrix.  The serial SK=0 baseline is run separately; the remaining
#: corners cover both flag values across both pool dimensions and both
#: dispatch substrates without running the full 16-point cube per app.
HAMMER_COMBOS = [
    ("1", 1, 1, "thread"),
    ("1", 4, 1, "thread"),
    ("1", 1, 4, "thread"),
    ("1", 4, 4, "thread"),
    ("0", 4, 4, "thread"),
    ("1", 4, 4, "process"),
    ("0", 4, 4, "process"),
]


class TestSuperkernelParity:
    """The PR-6 hammer: fused replay is bit-identical everywhere."""

    APPS = [
        ("cg", dict(grid_points_per_gpu=8), 5),
        ("jacobi", dict(rows_per_gpu=24), 5),
        ("black-scholes", dict(elements_per_gpu=96), 5),
        ("two-matvec", dict(rows_per_gpu=20), 5),
    ]

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_matrix_bit_identical(self, app_name, kwargs, iterations, monkeypatch):
        ctx_base, state_base, checksum_base = _run_app(
            app_name, monkeypatch, iterations, superkernel="0", **kwargs
        )
        for superkernel, workers, point_workers, backend in HAMMER_COMBOS:
            ctx, state, checksum = _run_app(
                app_name,
                monkeypatch,
                iterations,
                superkernel=superkernel,
                workers=workers,
                point_workers=point_workers,
                backend=backend,
                **kwargs,
            )
            label = (
                f"sk={superkernel} workers={workers} "
                f"point={point_workers} backend={backend}"
            )
            assert checksum == checksum_base, label
            assert set(state) == set(state_base), label
            for name in state_base:
                assert np.array_equal(state[name], state_base[name]), (label, name)
            assert (
                ctx.profiler.iteration_seconds()
                == ctx_base.profiler.iteration_seconds()
            ), label
            assert (
                ctx.legion.simulated_seconds == ctx_base.legion.simulated_seconds
            ), label

    def test_cg_closure_calls_drop(self, monkeypatch):
        """The tentpole's point: >= 3x fewer compiled-closure calls."""
        ctx_off, _state, checksum_off = _run_app(
            "cg", monkeypatch, 5, superkernel="0", kernel_backend="codegen",
            grid_points_per_gpu=8,
        )
        ctx_on, _state, checksum_on = _run_app(
            "cg", monkeypatch, 5, superkernel="1", kernel_backend="codegen",
            grid_points_per_gpu=8,
        )
        assert checksum_on == checksum_off
        assert ctx_on.profiler.superkernel_fusions > 0
        assert ctx_on.profiler.superkernel_calls > 0
        off_rate = ctx_off.profiler.closure_calls_per_epoch
        on_rate = ctx_on.profiler.closure_calls_per_epoch
        assert on_rate > 0
        assert off_rate / on_rate >= 3.0

    def test_two_matvec_opaque_fallback(self, monkeypatch):
        """Opaque GEMV steps replay step-by-step around fused units."""
        ctx, _state, checksum = _run_app(
            "two-matvec", monkeypatch, 5, superkernel="1",
            kernel_backend="codegen", workers=4, rows_per_gpu=20,
        )
        assert ctx.profiler.trace_hits > 0
        assert ctx.profiler.plan_width_max == 2
        # Same recurrence in plain NumPy (mirrors TwoMatVec.__init__).
        rows = int(np.ceil(20.0 * np.sqrt(4)))
        rows = max(4, (rows // 4) * 4)
        rng = np.random.default_rng(7)
        a = rng.uniform(1.0, 2.0, (rows, rows))
        b = rng.uniform(1.0, 2.0, (rows, rows))
        x = rng.uniform(0.0, 1.0, rows)
        y = rng.uniform(0.0, 1.0, rows)
        scale = 1.0 / (2.0 * rows)
        for _ in range(5):
            x = x + (a @ x) * scale
            y = y + (b @ y) * scale
        # The simulated checksum reduces tile by tile, so it can differ
        # from the flat NumPy sum in the last ulp; bit-identity across
        # flag values is what the hammer above asserts.
        assert checksum == pytest.approx(float(x.sum()) + float(y.sum()), rel=1e-12)


# ----------------------------------------------------------------------
# Fusion structure: folding, horizontal merges, process shipping.
# ----------------------------------------------------------------------
def _window1_config():
    """Defeat window fusion so adjacent element-wise tasks stay separate
    compiled steps — the vertical-splice shape of the lowering pass."""
    return FusionConfig(
        initial_window_size=1, max_window_size=1, adaptive_window=False
    )


def _run_chain(monkeypatch, superkernel, iterations=6):
    """``w = a * 2.0 + 1.0`` with a window of one: two adjacent compiled
    element-wise steps whose intermediate dies inside the epoch."""
    monkeypatch.setenv("REPRO_SUPERKERNEL", superkernel)
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
    monkeypatch.setenv("REPRO_TRACE", "1")
    # Folding rides the hot-path capture; pin the cache flag so the
    # seed-path CI leg (REPRO_HOTPATH_CACHE=0) doesn't leak in.
    monkeypatch.setenv("REPRO_HOTPATH_CACHE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
    config.reload_flags()
    context = RuntimeContext(
        num_gpus=4,
        fusion=True,
        machine=scaled_machine(4, 1e-4),
        fusion_config=_window1_config(),
    )
    set_context(context)
    try:
        import repro.frontend.cunumeric as cn

        rng = np.random.default_rng(3)
        a_host = rng.uniform(1.0, 2.0, 64)
        a = cn.array(a_host, name="foldA")
        result = None
        for _ in range(iterations):
            context.profiler.begin_iteration()
            w = a * 2.0 + 1.0
            result = w.to_numpy()
        sim = context.legion.simulated_seconds
    finally:
        set_context(None)
    return context, a_host, result, sim


class TestVerticalSpliceAndFolding:
    def test_dead_intermediate_folds_into_local(self, monkeypatch):
        ctx, a_host, result, _sim = _run_chain(monkeypatch, "1")
        np.testing.assert_array_equal(result, a_host * 2.0 + 1.0)
        assert ctx.profiler.superkernel_fusions == 1
        assert ctx.profiler.superkernel_fused_steps == 2
        folded = [
            step
            for ref in superkernel_module._LOWERED_PLANS
            for plan in [ref()]
            if plan is not None and plan.superkernel is not None
            for step in plan.superkernel.steps
            if getattr(step, "folded_slots", ())
        ]
        assert folded, "the dead intermediate was not folded"

    def test_folding_is_bit_identical(self, monkeypatch):
        _ctx0, _a, result_off, sim_off = _run_chain(monkeypatch, "0")
        _ctx1, _a, result_on, sim_on = _run_chain(monkeypatch, "1")
        np.testing.assert_array_equal(result_on, result_off)
        assert sim_on == sim_off


class TestHorizontalMerge:
    def test_independent_steps_merge(self, monkeypatch):
        """Two same-level element-wise steps of different shapes fuse
        into one two-section super-kernel (the width-2 shape of the
        point-dispatch regression suite, this time with lowering on)."""
        monkeypatch.setenv("REPRO_SUPERKERNEL", "1")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
        config.reload_flags()
        context = RuntimeContext(
            num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4)
        )
        set_context(context)
        try:
            import repro.frontend.cunumeric as cn

            rng = np.random.default_rng(11)
            a_host = rng.uniform(1.0, 2.0, (16, 64))
            b_host = rng.uniform(0.0, 1.0, 128)
            a = cn.array(a_host, name="wideA")
            b = cn.array(b_host, name="wideB")
            for _ in range(6):
                context.profiler.begin_iteration()
                u = a * 2.0
                v = b + 1.0
                np.testing.assert_array_equal(u.to_numpy(), a_host * 2.0)
                np.testing.assert_array_equal(v.to_numpy(), b_host + 1.0)
        finally:
            set_context(None)
        assert context.profiler.superkernel_fusions == 1
        assert context.profiler.superkernel_fused_steps == 2
        assert context.profiler.trace_hits > 0


class TestProcessShipping:
    def test_fused_units_execute_on_worker_processes(self, monkeypatch):
        """Fused CG units chunk across the process pool bit-identically."""
        ctx_thread, state_thread, checksum_thread = _run_app(
            "cg", monkeypatch, 5, superkernel="1", workers=4,
            point_workers=4, backend="thread", kernel_backend="codegen",
            grid_points_per_gpu=8,
        )
        ctx_proc, state_proc, checksum_proc = _run_app(
            "cg", monkeypatch, 5, superkernel="1", workers=4,
            point_workers=4, backend="process", kernel_backend="codegen",
            grid_points_per_gpu=8,
        )
        assert checksum_proc == checksum_thread
        for name in state_thread:
            assert np.array_equal(state_proc[name], state_thread[name]), name
        assert ctx_proc.profiler.superkernel_calls > 0
        assert ctx_proc.profiler.point_process_chunks > 0
        assert (
            ctx_proc.profiler.iteration_seconds()
            == ctx_thread.profiler.iteration_seconds()
        )


# ----------------------------------------------------------------------
# Cache lifecycle: reload_flags retires every cached lowering.
# ----------------------------------------------------------------------
class TestReloadRetiresLowerings:
    def test_reload_flags_drops_cached_plans(self, monkeypatch):
        ctx, _state, checksum = _run_app(
            "cg", monkeypatch, 5, superkernel="1", kernel_backend="codegen",
            grid_points_per_gpu=8,
        )
        assert ctx.profiler.superkernel_fusions > 0
        assert superkernel_module.lowered_plan_count() > 0
        config.reload_flags()
        assert superkernel_module.lowered_plan_count() == 0
        # A run after the reload re-lowers from scratch and still agrees.
        ctx2, _state, checksum2 = _run_app(
            "cg", monkeypatch, 5, superkernel="1", kernel_backend="codegen",
            grid_points_per_gpu=8,
        )
        assert checksum2 == checksum
        assert ctx2.profiler.superkernel_fusions > 0
        assert superkernel_module.lowered_plan_count() > 0
