"""Tests for the experiment harness and the shapes of the paper's results.

These use tiny problem sizes so the whole functional simulation runs in
seconds; the assertions check the *qualitative* claims of the paper
(speedup directions, task-count reductions, break-even behaviour), not
absolute numbers.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    default_scale_for,
    run_application_experiment,
    run_petsc_experiment,
    scaled_machine,
)
from repro.experiments.figures import (
    figure9_task_counts,
    figure13_compile_time,
    format_figure9,
    format_figure13,
)
from repro.experiments.weak_scaling import (
    format_series_table,
    geo_mean,
    run_weak_scaling,
)

TINY = ExperimentScale({"elements_per_gpu": 256}, 1e-6, 2, 2)
TINY_KRYLOV = ExperimentScale({"grid_points_per_gpu": 8}, 1e-6, 3, 2)


class TestScaledMachine:
    def test_scaling_preserves_ratios(self):
        base = scaled_machine(4, 1.0)
        scaled = scaled_machine(4, 1e-3)
        assert scaled.gpu_memory_bandwidth == pytest.approx(base.gpu_memory_bandwidth * 1e-3)
        assert scaled.gpu_peak_flops / scaled.gpu_memory_bandwidth == pytest.approx(
            base.gpu_peak_flops / base.gpu_memory_bandwidth
        )
        assert scaled.task_launch_overhead == base.task_launch_overhead

    def test_default_scales_exist_for_all_apps(self):
        for app in ("black-scholes", "jacobi", "cg", "bicgstab", "gmg", "cfd", "torchswe"):
            assert default_scale_for(app).iterations >= 1


class TestRunners:
    def test_application_run_result_fields(self):
        result = run_application_experiment("black-scholes", num_gpus=2, fusion=True, scale=TINY)
        assert result.app == "black-scholes"
        assert result.configuration == "fused"
        assert result.throughput > 0
        assert result.tasks_per_iteration > result.launched_tasks_per_iteration
        assert result.window_size >= 5
        assert result.warmup_seconds > 0

    def test_fused_and_unfused_checksums_agree(self):
        fused = run_application_experiment("cg", num_gpus=2, fusion=True, scale=TINY_KRYLOV)
        unfused = run_application_experiment("cg", num_gpus=2, fusion=False, scale=TINY_KRYLOV)
        assert fused.checksum == pytest.approx(unfused.checksum, rel=1e-9)

    def test_petsc_runner(self):
        result = run_petsc_experiment("cg", num_gpus=2, grid_points_per_gpu=8,
                                      iterations=3, bandwidth_scale=1e-6)
        assert result.configuration == "petsc"
        assert result.throughput > 0
        with pytest.raises(ValueError):
            run_petsc_experiment("gmres", num_gpus=1)


class TestPaperShapes:
    def test_black_scholes_fusion_wins_big(self):
        """Figure 10a: the fully-fusible micro-benchmark speeds up a lot."""
        scale = ExperimentScale({"elements_per_gpu": 2048}, 1e-6, 2, 2)
        fused = run_application_experiment("black-scholes", num_gpus=2, fusion=True, scale=scale)
        unfused = run_application_experiment("black-scholes", num_gpus=2, fusion=False, scale=scale)
        assert fused.throughput > 2.0 * unfused.throughput
        assert fused.launched_tasks_per_iteration < 0.2 * unfused.launched_tasks_per_iteration

    def test_jacobi_fusion_roughly_neutral(self):
        """Figure 10b: no significant impact when there is nothing to fuse."""
        scale = ExperimentScale({"rows_per_gpu": 128}, 2e-5, 3, 2)
        fused = run_application_experiment("jacobi", num_gpus=2, fusion=True, scale=scale)
        unfused = run_application_experiment("jacobi", num_gpus=2, fusion=False, scale=scale)
        ratio = fused.throughput / unfused.throughput
        assert 0.85 < ratio < 1.6

    def test_cg_fused_beats_unfused(self):
        """Figure 11a: Diffuse accelerates the naturally-written CG."""
        fused = run_application_experiment("cg", num_gpus=2, fusion=True, scale=TINY_KRYLOV)
        unfused = run_application_experiment("cg", num_gpus=2, fusion=False, scale=TINY_KRYLOV)
        assert fused.throughput > unfused.throughput

    def test_figure9_table_shape(self):
        rows = figure9_task_counts(num_gpus=1, apps=("black-scholes", "cg"), iterations=2)
        assert len(rows) == 2
        for row in rows:
            assert row.fused_tasks_per_iteration <= row.tasks_per_iteration
            assert row.window_size >= 5
        text = format_figure9(rows)
        assert "black-scholes" in text and "Window" in text

    def test_weak_scaling_series(self):
        series = run_weak_scaling(
            "black-scholes",
            gpu_counts=(1, 2),
            scale=ExperimentScale({"elements_per_gpu": 512}, 1e-6, 2, 2),
        )
        assert set(series) == {"Fused", "Unfused"}
        assert series["Fused"].gpu_counts == [1, 2]
        speedups = series["Fused"].speedup_over(series["Unfused"])
        assert all(s > 1.0 for s in speedups)
        table = format_series_table(series, "Black-Scholes")
        assert "GPUs" in table and "Fused" in table

    def test_figure13_breakeven(self):
        rows = figure13_compile_time(num_gpus=2, apps=("black-scholes",))
        row = rows[0]
        # Compilation makes the fused warm-up slower than the standard one...
        assert row.compiled_seconds > row.standard_seconds
        # ...and the overhead is amortised after a finite number of iterations.
        assert row.breakeven_iterations is not None
        assert row.breakeven_iterations > 0
        assert "Breakeven" in format_figure13(rows)


class TestGeoMean:
    def test_geo_mean(self):
        assert geo_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geo_mean([]) == 0.0
        assert geo_mean([1.0]) == 1.0
