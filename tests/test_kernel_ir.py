"""Tests for the kernel IR, builder, generators, cost model and lowering."""

import numpy as np
import pytest

from repro.ir.domain import Domain
from repro.ir.partition import natural_tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.kernel.builder import KernelBuilder, as_expr
from repro.kernel.compiler import CompileTimeModel, JITCompiler
from repro.kernel.cost import analyze_kernel
from repro.kernel.generators import default_registry, has_generator
from repro.kernel.kir import (
    Assign,
    BinOp,
    BinOpKind,
    Const,
    Load,
    LocalRef,
    Loop,
    Param,
    Function,
    Reduce,
    ReduceKind,
    ScalarRef,
    UnOp,
    UnOpKind,
    count_flops,
    evaluate_expr,
    substitute_expr,
)
from repro.kernel.lowering import lower
from repro.kernel.passes.compose import compose_task


class TestExpressions:
    def test_buffers_read(self):
        expr = BinOp(BinOpKind.ADD, Load("a"), UnOp(UnOpKind.SQRT, Load("b")))
        assert expr.buffers_read() == {"a", "b"}
        assert expr.locals_read() == set()

    def test_locals_read(self):
        expr = BinOp(BinOpKind.MUL, LocalRef("t"), Const(2.0))
        assert expr.locals_read() == {"t"}

    def test_count_flops(self):
        cheap = BinOp(BinOpKind.ADD, Load("a"), Load("b"))
        assert count_flops(cheap) == 1
        heavy = UnOp(UnOpKind.EXP, cheap)
        assert count_flops(heavy) == 9  # transcendental counts as several flops

    def test_substitution(self):
        expr = BinOp(BinOpKind.ADD, Load("a"), ScalarRef("s0"))
        renamed = substitute_expr(expr, {"a": "x", "s0": "s5"})
        assert renamed.buffers_read() == {"x"}
        assert isinstance(renamed.rhs, ScalarRef) and renamed.rhs.name == "s5"

    def test_evaluation(self):
        buffers = {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])}
        expr = BinOp(BinOpKind.MUL, Load("a"), BinOp(BinOpKind.ADD, Load("b"), Const(1.0)))
        result = evaluate_expr(expr, buffers, {}, {})
        np.testing.assert_allclose(result, [4.0, 10.0])

    def test_erf_accuracy(self):
        from math import erf

        values = np.linspace(-3, 3, 41)
        computed = evaluate_expr(UnOp(UnOpKind.ERF, Load("x")), {"x": values}, {}, {})
        expected = np.vectorize(erf)(values)
        np.testing.assert_allclose(computed, expected, atol=2e-7)


class TestFunction:
    def test_duplicate_params_rejected(self):
        with pytest.raises(ValueError):
            Function("k", (Param.buffer("a"), Param.buffer("a")), ())

    def test_introspection(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "b")
        scale = builder.scalar("s0")
        builder.loop("b").assign("b", KernelBuilder.add("a", scale)).end_loop()
        function = builder.build()
        assert len(function.loops) == 1
        assert function.buffers_read() == {"a"}
        assert function.buffers_written() == {"b"}
        assert {p.name for p in function.buffer_params} == {"a", "b"}
        assert {p.name for p in function.scalar_params} == {"s0"}
        assert "affine.for" in function.pretty()


class TestBuilder:
    def test_as_expr_coercion(self):
        assert isinstance(as_expr("buf"), Load)
        assert isinstance(as_expr(3), Const)
        with pytest.raises(TypeError):
            as_expr(object())

    def test_statement_outside_loop_rejected(self):
        builder = KernelBuilder("k")
        builder.buffer("a")
        with pytest.raises(RuntimeError):
            builder.assign("a", 1.0)

    def test_nested_loops_rejected(self):
        builder = KernelBuilder("k")
        builder.buffer("a")
        builder.loop("a")
        with pytest.raises(RuntimeError):
            builder.loop("a")

    def test_select_semantics(self):
        cond = np.array([1.0, 0.0, 1.0])
        a = np.array([10.0, 20.0, 30.0])
        b = np.array([-1.0, -2.0, -3.0])
        expr = KernelBuilder.select("c", "a", "b")
        result = evaluate_expr(expr, {"c": cond, "a": a, "b": b}, {}, {})
        np.testing.assert_allclose(result, [10.0, -2.0, 30.0])


class TestGenerators:
    def test_registry_contents(self):
        registry = default_registry()
        for name in ("add", "multiply", "copy", "fill", "dot", "sqrt", "axpy", "where"):
            assert registry.has(name)
        assert not registry.has("spmv_csr")
        assert has_generator("add")

    def test_generator_shapes(self, store_manager, launch4):
        registry = default_registry()
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        c = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        task = IndexTask("add", launch4, [
            StoreArg(a, part, Privilege.READ),
            StoreArg(b, part, Privilege.READ),
            StoreArg(c, part, Privilege.WRITE),
        ])
        function = registry.generate(task)
        assert function is not None
        assert len(function.loops) == 1
        assert function.buffers_written() == {"a2"}

    def test_registry_copy_is_independent(self):
        registry = default_registry().copy()
        registry.unregister("add")
        assert not registry.has("add")
        assert default_registry().has("add")


def _elementwise_task(manager, launch, name, n_inputs, scalars=()):
    part_shape = (16,)
    stores = [manager.create_store(part_shape) for _ in range(n_inputs + 1)]
    part = natural_tiling(part_shape, launch)
    args = [StoreArg(s, part, Privilege.READ) for s in stores[:-1]]
    args.append(StoreArg(stores[-1], part, Privilege.WRITE))
    return IndexTask(name, launch, args, scalar_args=scalars), stores


class TestLoweringAndCost:
    def test_single_task_execution(self, store_manager, launch4):
        task, stores = _elementwise_task(store_manager, launch4, "add", 2)
        function, binding = compose_task(task, default_registry())
        executor = lower(function, binding)
        a = np.arange(4.0)
        b = np.full(4, 2.0)
        out = np.zeros(4)
        executor({"v0": a, "v1": b, "v2": out}, {})
        np.testing.assert_allclose(out, a + b)

    def test_reduction_partials(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        result = store_manager.create_scalar_store()
        part = natural_tiling((8,), launch4)
        task = IndexTask("sum_reduce", launch4, [
            StoreArg(a, part, Privilege.READ),
            StoreArg(result, natural_tiling((), Domain((1,))) if False else part, Privilege.REDUCE, ReductionOp.ADD),
        ])
        function, binding = compose_task(task, default_registry())
        executor = lower(function, binding)
        partials = executor({"v0": np.arange(4.0), "v1": None}, {})
        assert partials["v1"].value == pytest.approx(6.0)
        assert partials["v1"].kind is ReduceKind.SUM

    def test_cost_model_counts_traffic_and_launches(self, store_manager, launch4):
        task, _ = _elementwise_task(store_manager, launch4, "add", 2)
        function, binding = compose_task(task, default_registry())
        cost = analyze_kernel(function)
        assert cost.launches == 1
        assert cost.loops[0].flops_per_element == 1
        counts = {"v0": 100, "v1": 100, "v2": 100}
        assert cost.total_bytes(counts) == 3 * 100 * 8

        class FakeMachine:
            gpu_memory_bandwidth = 1e9
            gpu_peak_flops = 1e12
            kernel_launch_latency = 1e-5
            reduction_latency = 1e-6

        seconds = cost.estimate_seconds(counts, FakeMachine())
        assert seconds == pytest.approx(1e-5 + 3 * 100 * 8 / 1e9)


class TestCompiler:
    def test_single_task_compile_and_cache(self, store_manager, launch4):
        compiler = JITCompiler()
        task, _ = _elementwise_task(store_manager, launch4, "multiply", 2)
        kernel_a = compiler.compile(task, cache_key="k1")
        kernel_b = compiler.compile(task, cache_key="k1")
        assert kernel_a is kernel_b
        assert compiler.stats.cache_hits == 1
        assert compiler.stats.compilations == 1
        assert compiler.cache_size == 1
        compiler.clear_cache()
        assert compiler.cache_size == 0

    def test_compile_time_model_scales_with_size(self):
        model = CompileTimeModel()
        small = KernelBuilder("s")
        small.buffers("a", "b")
        small.loop("b").assign("b", "a").end_loop()
        big = KernelBuilder("b")
        big.buffers("a", "b")
        loop = big.loop("b")
        for _ in range(20):
            loop.assign("b", KernelBuilder.add("a", "b"))
        loop.end_loop()
        assert model.estimate(big.build()) > model.estimate(small.build())

    def test_can_compile(self, store_manager, launch4):
        compiler = JITCompiler()
        task, _ = _elementwise_task(store_manager, launch4, "add", 2)
        opaque, _ = _elementwise_task(store_manager, launch4, "spmv_csr", 2)
        assert compiler.can_compile(task)
        assert not compiler.can_compile(opaque)

    def test_uncompilable_charges_nothing(self, store_manager, launch4):
        compiler = JITCompiler()
        task, _ = _elementwise_task(store_manager, launch4, "add", 2)
        kernel = compiler.compile(task, charge_compile_time=False)
        assert kernel.compile_seconds == 0.0
