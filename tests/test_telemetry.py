"""Telemetry flight recorder (``REPRO_TELEMETRY``).

Acceptance bar: arming the recorder changes *nothing* about execution —
buffers, checksums, simulated seconds and the wire counters stay
bit-identical under the differential kernel backend on the process
substrate — while a process-backend CG run exports a valid Chrome
trace-event JSON whose spans come from at least two OS processes
(parent plus pool workers), every begin matched by an end, nested within
its epoch, with per-worker recording order preserved across the merge.
The off path is provably free: with the flag unset no recorder call is
ever made.
"""

from __future__ import annotations

import json
from collections import defaultdict

import pytest

from repro import config
from repro.experiments.harness import ExperimentScale, run_application_experiment
from repro.runtime import telemetry
from repro.runtime.telemetry import SpanRecorder


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


#: A small steady-replay CG configuration: enough epochs that capture,
#: replay, scheduling, point dispatch and the wire protocol all appear.
CG_SCALE = ExperimentScale({"grid_points_per_gpu": 16}, 1e-5, 6, 2)


def _run_cg(
    monkeypatch,
    telemetry_on: bool,
    backend: str = "process",
    workers: str = "4",
    kernel_backend: str = "codegen",
):
    """One CG run under the full replay stack; returns the RunResult."""
    monkeypatch.setenv("REPRO_TELEMETRY", "1" if telemetry_on else "0")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", kernel_backend)
    monkeypatch.setenv("REPRO_HOTPATH_CACHE", "1")
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_NORMALIZE", "1")
    monkeypatch.setenv("REPRO_WORKERS", workers)
    monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
    monkeypatch.setenv("REPRO_DISPATCH_BACKEND", backend)
    config.reload_flags()
    telemetry.reset()
    return run_application_experiment("cg", num_gpus=4, fusion=True, scale=CG_SCALE)


# ----------------------------------------------------------------------
# Configuration flags.
# ----------------------------------------------------------------------
class TestTelemetryConfig:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        config.reload_flags()
        assert config.telemetry_enabled() is False
        assert telemetry.active() is None
        assert not telemetry.enabled()

    @pytest.mark.parametrize("value", ["1", "on", "true", "TRUE"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        config.reload_flags()
        assert config.telemetry_enabled() is True
        assert isinstance(telemetry.active(), SpanRecorder)

    def test_capacity_default_floor_and_junk(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_EVENTS", raising=False)
        config.reload_flags()
        assert config.telemetry_event_capacity() == config.DEFAULT_TELEMETRY_EVENTS
        monkeypatch.setenv("REPRO_TELEMETRY_EVENTS", "4")
        config.reload_flags()
        assert config.telemetry_event_capacity() == 16
        monkeypatch.setenv("REPRO_TELEMETRY_EVENTS", "junk")
        config.reload_flags()
        assert config.telemetry_event_capacity() == config.DEFAULT_TELEMETRY_EVENTS
        monkeypatch.setenv("REPRO_TELEMETRY_EVENTS", "-5")
        config.reload_flags()
        assert config.telemetry_event_capacity() == config.DEFAULT_TELEMETRY_EVENTS

    def test_reload_resizes_ring(self, monkeypatch):
        """Satellite: ``reload_flags`` retires/resizes the ring buffer."""
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_EVENTS", "64")
        config.reload_flags()
        first = telemetry.active()
        assert first is not None and first.capacity == 64
        monkeypatch.setenv("REPRO_TELEMETRY_EVENTS", "128")
        config.reload_flags()
        second = telemetry.active()
        assert second is not None and second.capacity == 128
        assert second is not first
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        config.reload_flags()
        assert telemetry.active() is None

    def test_reload_clears_worker_batches(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        config.reload_flags()
        telemetry.ingest_worker_events(
            12345, 0, 0.0, [("I", "x", "", 1.0, 1, 0.0, 0)]
        )
        assert any(pid == 12345 for pid, _, _ in telemetry.merged_events())
        config.reload_flags()
        assert not any(pid == 12345 for pid, _, _ in telemetry.merged_events())


# ----------------------------------------------------------------------
# The ring buffer.
# ----------------------------------------------------------------------
class TestSpanRecorder:
    def test_records_in_order(self):
        recorder = SpanRecorder(8)
        recorder.record("B", "a", "first", 1.0)
        recorder.record("E", "a", "first", 2.0)
        events = recorder.events()
        assert [e[0] for e in events] == ["B", "E"]
        assert [e[6] for e in events] == [0, 1]
        assert events[0][3] <= events[1][3]
        assert recorder.recorded == 2 and recorder.dropped == 0

    def test_wraparound_keeps_newest(self):
        recorder = SpanRecorder(4)
        for index in range(6):
            recorder.record("I", "k", str(index), 0.0)
        assert recorder.recorded == 6
        assert recorder.dropped == 2
        events = recorder.events()
        assert [e[6] for e in events] == [2, 3, 4, 5]
        assert [e[2] for e in events] == ["2", "3", "4", "5"]

    def test_drain_clears(self):
        recorder = SpanRecorder(4)
        recorder.record("I", "k", "", 0.0)
        assert len(recorder.drain()) == 1
        assert recorder.events() == []
        assert recorder.recorded == 0

    def test_span_context_manager_pairs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        config.reload_flags()
        with telemetry.span("unit.test", "label", sim=3.5):
            telemetry.instant("unit.instant")
        events = telemetry.active().events()
        assert [(e[0], e[1]) for e in events] == [
            ("B", "unit.test"),
            ("I", "unit.instant"),
            ("E", "unit.test"),
        ]
        assert events[0][5] == 3.5


# ----------------------------------------------------------------------
# The off path is free.
# ----------------------------------------------------------------------
class TestOffPath:
    def test_span_returns_shared_noop(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        config.reload_flags()
        assert telemetry.span("a", "b") is telemetry.span("c")
        assert telemetry.instant("a") is None

    def test_zero_recorder_calls_when_off(self, monkeypatch):
        """A full CG run with the flag unset makes no recorder call."""
        calls = []

        original = SpanRecorder.record

        def counting(self, *args, **kwargs):
            calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SpanRecorder, "record", counting)
        _run_cg(monkeypatch, telemetry_on=False, backend="thread")
        assert calls == []


# ----------------------------------------------------------------------
# Bit-identity: telemetry on changes nothing about execution.
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_differential_run_identical_with_telemetry(self, monkeypatch):
        """Differential-backend CG on the process substrate, off vs on.

        The differential executor aborts on any bitwise kernel
        divergence, and the scalar results compared here are exact —
        simulated seconds (via throughput/warmup), checksum, and the
        wire counters (the telemetry handshake must bypass the meter).
        """
        off = _run_cg(monkeypatch, telemetry_on=False, kernel_backend="differential")
        on = _run_cg(monkeypatch, telemetry_on=True, kernel_backend="differential")
        assert on.checksum == off.checksum
        assert on.throughput == off.throughput
        assert on.warmup_seconds == off.warmup_seconds
        assert on.wire_bytes == off.wire_bytes
        assert on.wire_requests == off.wire_requests
        assert on.trace_hits == off.trace_hits


# ----------------------------------------------------------------------
# Span integrity across processes.
# ----------------------------------------------------------------------
def _lane_events(merged):
    """Group merged events by (pid, tid) lane, preserving merge order."""
    lanes = defaultdict(list)
    for pid, worker, event in merged:
        lanes[(pid, event[4])].append((worker, event))
    return lanes


@pytest.mark.parametrize("workers", ["1", "4"])
class TestSpanIntegrity:
    def test_process_backend_spans(self, monkeypatch, workers):
        result = _run_cg(monkeypatch, telemetry_on=True, workers=workers)
        assert result.point_process_chunks > 0
        merged = telemetry.merged_events()
        assert merged

        # Spans from at least two OS processes: the parent and >= 1
        # pool worker (pool size = max(workers, point workers) = 4).
        pids = {pid for pid, _, _ in merged}
        assert len(pids) >= 2

        # Every begin has a matching end, LIFO-nested, per lane — which
        # also proves plan/step/chunk spans nest inside their epoch span
        # (the epoch is the outermost frame on the scheduling thread).
        for (pid, tid), entries in _lane_events(merged).items():
            stack = []
            for _worker, (phase, kind, _label, _wall, _tid, _sim, _seq) in entries:
                if phase == "B":
                    stack.append(kind)
                elif phase == "E":
                    assert stack, f"end without begin on lane {(pid, tid)}: {kind}"
                    assert stack.pop() == kind
            assert stack == [], f"unclosed spans on lane {(pid, tid)}: {stack}"

        # Epoch nesting on the parent's scheduling lane: every
        # plan.level begin sits inside an open epoch.replay span.
        for (pid, tid), entries in _lane_events(merged).items():
            depth = 0
            for _worker, event in entries:
                phase, kind = event[0], event[1]
                if kind == "epoch.replay":
                    depth += 1 if phase == "B" else -1
                elif kind == "plan.level" and phase == "B":
                    assert depth > 0, "plan.level began outside an epoch.replay"

        # The merge preserves each worker's recording order.  The worker
        # ring is drained per reply, so sequence numbers restart at 0
        # every batch; the cross-batch invariant is that the worker's
        # wall clock never goes backwards in merge order, and within a
        # drained batch (seq > 0 continues the run) seq stays monotone.
        per_worker = defaultdict(list)
        for pid, worker, event in merged:
            if worker >= 0:
                per_worker[(pid, worker)].append((event[3], event[6]))
        assert per_worker, "no worker events were piggybacked back"
        for key, entries in per_worker.items():
            walls = [wall for wall, _seq in entries]
            assert walls == sorted(walls), f"worker {key} events reordered"
            for (_, prev_seq), (_, seq) in zip(entries, entries[1:]):
                assert seq == 0 or seq == prev_seq + 1, (
                    f"worker {key} drained batch out of order"
                )

        # Worker spans really are execution spans.
        worker_kinds = {
            event[1] for _pid, worker, event in merged if worker >= 0
        }
        assert worker_kinds & {"worker.chunk", "worker.opaque_chunk", "worker.resident"}


# ----------------------------------------------------------------------
# Chrome trace export.
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_export_is_valid_chrome_trace(self, monkeypatch, tmp_path):
        _run_cg(monkeypatch, telemetry_on=True)
        path = tmp_path / "trace.json"
        telemetry.write_chrome_trace(str(path))
        trace = json.loads(path.read_text())

        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = trace["traceEvents"]
        assert events
        phases = set()
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            phases.add(event["ph"])
            if event["ph"] != "M":
                assert event["ts"] >= 0.0
                assert {"label", "sim_seconds", "seq"} <= set(event["args"])
        assert {"B", "E", "M"} <= phases

        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert "repro-parent" in names
        assert any(name.startswith("repro-worker-") for name in names)
        pids = {event["pid"] for event in events if event["ph"] != "M"}
        assert len(pids) >= 2
        assert trace["otherData"]["dropped_events"] == 0

    def test_capacity_overflow_reports_drops(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_EVENTS", "16")
        config.reload_flags()
        for index in range(40):
            telemetry.instant("unit.flood", str(index))
        trace = telemetry.export_chrome_trace()
        assert trace["otherData"]["dropped_events"] == 24
        spans = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(spans) == 16


# ----------------------------------------------------------------------
# Pool retirement on reload (satellite: mirrors the pool singleton).
# ----------------------------------------------------------------------
class TestPoolRetirement:
    def test_telemetry_flip_retires_process_pool(self, monkeypatch):
        from repro.runtime.procpool import process_pool, shutdown_process_pool

        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "2")
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        config.reload_flags()
        try:
            unarmed = process_pool()
            assert unarmed._telemetry_state == (False, config.telemetry_event_capacity())
            monkeypatch.setenv("REPRO_TELEMETRY", "1")
            config.reload_flags()
            armed = process_pool()
            assert armed is not unarmed
            assert armed._telemetry_state[0] is True
            # Same armed state: the pool survives the reload (it only
            # receives a fire-and-forget ring reset).
            config.reload_flags()
            assert process_pool() is armed
            monkeypatch.setenv("REPRO_TELEMETRY", "0")
            config.reload_flags()
            assert process_pool() is not armed
        finally:
            shutdown_process_pool()


# ----------------------------------------------------------------------
# The tracedump CLI.
# ----------------------------------------------------------------------
class TestTracedump:
    def test_tracedump_smoke_writes_valid_trace(self, tmp_path):
        """The CI artifact: ``-m repro.tools.tracedump --smoke`` output."""
        import os
        import subprocess
        import sys

        output = tmp_path / "TRACE_cg.json"
        metrics = tmp_path / "METRICS_cg.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.tools.tracedump",
                "--app",
                "cg",
                "--smoke",
                "--iterations",
                "3",
                "--output",
                str(output),
                "--metrics-output",
                str(metrics),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        trace = json.loads(output.read_text())
        assert trace["traceEvents"]
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] != "M"}
        assert len(pids) >= 2
        snapshot = trace["otherData"]["profiler"]
        assert snapshot["trace_hits"] > 0
        assert snapshot == json.loads(metrics.read_text())
