"""Chunk-level opaque operator registry (``REPRO_OPAQUE_CHUNKS``).

Acceptance bar: chunk-level opaque execution is bit-identical to the
per-rank path — buffers, checksums AND simulated seconds — for every
``REPRO_DISPATCH_BACKEND`` × ``REPRO_WORKERS`` {1,4} ×
``REPRO_POINT_WORKERS`` {1,4} combination, asserted under the
differential kernel backend on apps covering every registered chunk
implementation (GEMV, SpMV, the multigrid transfers).  Alongside the
hammer, this file unit-tests the registry/resolve API, the bounded
opaque-binding LRU, the shippability guards (hand-built and
chunk-less operators fall back without crossing the pipe), the worker
pool's unknown-operator error path and the dead-worker degrade.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.runtime.opaque import (
    OpaqueTaskImpl,
    OpaqueTaskRegistry,
    default_opaque_registry,
    register_opaque_task,
    resolve_opaque_impl,
)
from repro.runtime.procpool import shutdown_process_pool


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    """Zero both dispatch thresholds so tiny launches hit the pools."""
    import repro.runtime.executor as executor_module
    import repro.runtime.scheduler as scheduler_module

    monkeypatch.setattr(executor_module, "MIN_POINT_DISPATCH_VOLUME", 0)
    monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)


# ----------------------------------------------------------------------
# The registry and name resolution.
# ----------------------------------------------------------------------
def _execute(task, point, buffers):
    return None


def _cost(task, point, buffers, machine):
    return 0.0


def _chunk_execute(bases, rects, scalars):
    return None


def _chunk_cost(bases, rects, scalars, machine):
    return []


class TestRegistry:
    def test_register_records_chunk_and_module(self):
        registry = OpaqueTaskRegistry()
        impl = register_opaque_task(
            "probe",
            _execute,
            _cost,
            registry=registry,
            chunk_execute=_chunk_execute,
            chunk_cost_seconds=_chunk_cost,
        )
        assert registry.get("probe") is impl
        assert impl.chunk is not None
        assert impl.chunk.execute is _chunk_execute
        assert impl.module == _execute.__module__

    def test_chunk_requires_both_halves(self):
        registry = OpaqueTaskRegistry()
        impl = register_opaque_task(
            "probe", _execute, _cost, registry=registry, chunk_execute=_chunk_execute
        )
        assert impl.chunk is None

    def test_builtin_operators_carry_chunk_impls(self):
        registry = default_opaque_registry()
        for name in ("gemv", "spmv_csr", "gmg_restrict", "gmg_prolong"):
            impl = registry.get(name)
            assert impl.chunk is not None, name
            assert impl.module, name

    def test_resolve_known_operator(self):
        impl = resolve_opaque_impl("gmg_restrict", module="repro.apps.gmg")
        assert impl is default_opaque_registry().get("gmg_restrict")

    def test_resolve_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            resolve_opaque_impl("not-a-registered-operator")


# ----------------------------------------------------------------------
# The bounded opaque-binding LRU (satellite regression).
# ----------------------------------------------------------------------
class _StubField:
    def view(self, rect):
        return np.zeros(1)


class TestBindingMemoLRU:
    def _executor(self):
        import repro.runtime.executor as executor_module
        from repro.runtime.region import RegionManager

        return executor_module.TaskExecutor(RegionManager(), scaled_machine(1, 1e-4))

    def test_eviction_is_bounded_and_least_recent(self, monkeypatch):
        import repro.runtime.executor as executor_module

        monkeypatch.setattr(executor_module, "OPAQUE_BINDING_MEMO_LIMIT", 4)
        executor = self._executor()
        fields = [_StubField() for _ in range(6)]
        tables = [[(None, 0)] for _ in range(6)]
        prepared = [((0, fields[i], False, tables[i]),) for i in range(6)]

        rows = [executor._opaque_binding_rows(prepared[i], 1) for i in range(4)]
        assert len(executor._opaque_binding_memo) == 4
        # A hit refreshes its entry (and returns the cached rows).
        assert executor._opaque_binding_rows(prepared[0], 1) is rows[0]
        # An insert at capacity evicts exactly one entry: the stalest.
        executor._opaque_binding_rows(prepared[4], 1)
        assert len(executor._opaque_binding_memo) == 4
        # The refreshed entry survived the eviction ...
        assert executor._opaque_binding_rows(prepared[0], 1) is rows[0]
        # ... and the untouched oldest entry did not (it is rebuilt).
        assert executor._opaque_binding_rows(prepared[1], 1) is not rows[1]
        assert len(executor._opaque_binding_memo) == 4

    def test_memo_never_exceeds_limit(self, monkeypatch):
        import repro.runtime.executor as executor_module

        monkeypatch.setattr(executor_module, "OPAQUE_BINDING_MEMO_LIMIT", 3)
        executor = self._executor()
        for _ in range(10):
            prepared = ((0, _StubField(), False, [(None, 0)]),)
            executor._opaque_binding_rows(prepared, 1)
            assert len(executor._opaque_binding_memo) <= 3


# ----------------------------------------------------------------------
# The worker pool's unknown-operator error path.
# ----------------------------------------------------------------------
class TestOpaqueChunkProtocol:
    def test_unknown_operator_raises_and_pool_survives(self, monkeypatch):
        import repro.runtime.procpool as procpool

        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        config.reload_flags()
        pool = procpool.ProcessWorkerPool(1)
        try:
            request = procpool.OpaqueChunkRequest(
                op="not-a-registered-operator",
                module=None,
                scalars=(),
                buffers=(),
                start=0,
                stop=0,
                machine=None,
            )
            # The worker's error is re-raised type-preserving in the
            # parent, with the worker traceback appended.
            with pytest.raises(KeyError, match="not-a-registered-operator"):
                pool.run_opaque_chunks([request])
            # The pipe protocol stayed in sync: the worker still answers.
            with pytest.raises(KeyError, match="not-a-registered-operator"):
                pool.run_opaque_chunks([request])
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# End-to-end parity: chunked vs per-rank, the differential hammer.
# ----------------------------------------------------------------------
BACKENDS = ("thread", "process")
COMBOS = [(1, 1), (4, 1), (1, 4), (4, 4)]


def _run_app(
    app_name, backend, point_workers, workers, chunks, monkeypatch, iterations, **kwargs
):
    monkeypatch.setenv("REPRO_DISPATCH_BACKEND", backend)
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    monkeypatch.setenv("REPRO_OPAQUE_CHUNKS", "1" if chunks else "0")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application(app_name, context=context, **kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


class TestChunkedParity:
    """Chunked vs per-rank opaque execution across the dispatch matrix.

    The two-mat-vec recurrence (opaque GEMV on a width-2 DAG) and GMG
    (SpMV plus both multigrid transfer operators interleaved with
    fusible chains) must be bit-identical — buffers, checksums and
    simulated seconds — to the per-rank thread/1/1 baseline for every
    chunked combination, with both kernel backends cross-checked on
    every invocation by the differential executor.  Together the two
    apps execute every registered chunk implementation.
    """

    APPS = [
        ("two-matvec", dict(rows_per_gpu=16), 5),
        ("gmg", dict(grid_points_per_gpu=8), 3),
    ]

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_matrix_bit_identical(self, app_name, kwargs, iterations, monkeypatch):
        ctx_base, state_base, checksum_base = _run_app(
            app_name, "thread", 1, 1, False, monkeypatch, iterations, **kwargs
        )
        assert ctx_base.profiler.opaque_rank_calls > 0
        assert ctx_base.profiler.opaque_chunk_calls == 0
        for backend in BACKENDS:
            for point_workers, workers in COMBOS:
                ctx, state, checksum = _run_app(
                    app_name, backend, point_workers, workers,
                    True, monkeypatch, iterations, **kwargs,
                )
                label = f"{backend} point={point_workers} workers={workers}"
                assert checksum == checksum_base, label
                assert set(state) == set(state_base), label
                for name in state_base:
                    assert np.array_equal(state[name], state_base[name]), (label, name)
                assert (
                    ctx.profiler.iteration_seconds()
                    == ctx_base.profiler.iteration_seconds()
                ), label
                assert (
                    ctx.legion.simulated_seconds == ctx_base.legion.simulated_seconds
                ), label
                assert ctx.profiler.opaque_chunk_calls > 0, label
                if backend == "process" and point_workers > 1:
                    # Opaque chunks rode the worker-process substrate.
                    assert ctx.profiler.opaque_process_chunks > 0, label
        shutdown_process_pool()


# ----------------------------------------------------------------------
# Fallback and degrade regressions.
# ----------------------------------------------------------------------
class TestFallbacks:
    def _swap_gemv(self, replacement):
        registry = default_opaque_registry()
        original = registry.get("gemv")
        registry.register(replacement(original))
        return registry, original

    def test_unshippable_operator_stays_on_threads(self, monkeypatch):
        """Hand-built impls (``module=None``) never cross the pipe.

        The executor's shippability guard must keep their chunks on the
        thread substrate — still chunk-level, still bit-identical —
        instead of shipping an unresolvable name to the workers.
        """
        ctx_base, state_base, checksum_base = _run_app(
            "two-matvec", "thread", 1, 1, False, monkeypatch, 4, rows_per_gpu=16
        )
        registry, original = self._swap_gemv(
            lambda orig: OpaqueTaskImpl(
                name=orig.name,
                execute=orig.execute,
                cost_seconds=orig.cost_seconds,
                chunk=orig.chunk,
                module=None,
            )
        )
        try:
            ctx, state, checksum = _run_app(
                "two-matvec", "process", 4, 4, True, monkeypatch, 4, rows_per_gpu=16
            )
            assert checksum == checksum_base
            for name in state_base:
                assert np.array_equal(state[name], state_base[name]), name
            assert ctx.profiler.opaque_chunk_calls > 0
            assert ctx.profiler.opaque_process_chunks == 0
        finally:
            registry.register(original)
        shutdown_process_pool()

    def test_chunkless_operator_falls_back_to_per_rank(self, monkeypatch):
        """Operators without a chunk impl run the per-rank loop unchanged."""
        ctx_base, state_base, checksum_base = _run_app(
            "two-matvec", "thread", 1, 1, False, monkeypatch, 4, rows_per_gpu=16
        )
        registry, original = self._swap_gemv(
            lambda orig: OpaqueTaskImpl(
                name=orig.name,
                execute=orig.execute,
                cost_seconds=orig.cost_seconds,
                chunk=None,
                module=orig.module,
            )
        )
        try:
            ctx, state, checksum = _run_app(
                "two-matvec", "process", 4, 4, True, monkeypatch, 4, rows_per_gpu=16
            )
            assert checksum == checksum_base
            for name in state_base:
                assert np.array_equal(state[name], state_base[name]), name
            assert ctx.profiler.opaque_rank_calls > 0
            assert ctx.profiler.opaque_chunk_calls == 0
        finally:
            registry.register(original)
        shutdown_process_pool()

    def test_dead_workers_degrade_mid_run(self, monkeypatch):
        """Killing the pool mid-run degrades gracefully, bit-identically."""
        import repro.runtime.procpool as procpool

        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
        monkeypatch.setenv("REPRO_OPAQUE_CHUNKS", "1")
        config.reload_flags()
        context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
        set_context(context)
        try:
            app = build_application("two-matvec", context=context, rows_per_gpu=16)
            app.run(1)
            pool = procpool.process_pool()
            for process in pool._processes:
                process.terminate()
            for process in pool._processes:
                process.join(timeout=5.0)
            # The next dispatch surfaces the broken pool; execution must
            # degrade (thread chunks or a rebuilt pool) without error and
            # stay bit-identical to the uninterrupted run.
            app.run(1)
            checksum = app.checksum()
        finally:
            set_context(None)
        # Re-run the same split schedule on the thread baseline.
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "thread")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        config.reload_flags()
        context_base = RuntimeContext(
            num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4)
        )
        set_context(context_base)
        try:
            baseline_app = build_application(
                "two-matvec", context=context_base, rows_per_gpu=16
            )
            baseline_app.run(1)
            baseline_app.run(1)
            checksum_base = baseline_app.checksum()
        finally:
            set_context(None)
        assert checksum == checksum_base
        assert (
            context.legion.simulated_seconds == context_base.legion.simulated_seconds
        )
        shutdown_process_pool()
