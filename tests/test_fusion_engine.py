"""Tests for temporary elimination, memoization and the Diffuse engine."""

import numpy as np
import pytest

from repro.ir.domain import Domain
from repro.ir.partition import Replication, Tiling, natural_tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.fusion.engine import DiffuseRuntime, FusionConfig
from repro.fusion.memoization import (
    FusionDecision,
    MemoizationCache,
    canonicalize_window,
    resolve_temporaries,
)
from repro.fusion.temporaries import find_temporary_stores
from repro.runtime.machine import MachineConfig
from repro.runtime.runtime import LegionRuntime


def _chain(manager, launch, length=3, shape=(16,), live_refs=False):
    """Chain of adds writing fresh stores.

    With ``live_refs`` every produced store carries an application
    reference, mimicking how the frontends hold handles while an
    expression is being built.
    """
    part = natural_tiling(shape, launch)
    a = manager.create_store(shape, name="in_a")
    b = manager.create_store(shape, name="in_b")
    tasks = []
    outs = []
    current = a
    for index in range(length):
        out = manager.create_store(shape, name=f"chain{index}")
        tasks.append(IndexTask("add", launch, [
            StoreArg(current, part, Privilege.READ),
            StoreArg(b, part, Privilege.READ),
            StoreArg(out, part, Privilege.WRITE),
        ]))
        outs.append(out)
        current = out
    if live_refs:
        for out in outs:
            out.add_application_reference()
    return tasks, a, b, outs


class TestTemporaries:
    def test_intermediates_are_temporary(self, store_manager, launch4):
        tasks, a, b, outs = _chain(store_manager, launch4)
        outs[-1].add_application_reference()  # the application keeps the result
        temps = find_temporary_stores(tasks)
        names = {t.name for t in temps}
        assert names == {"chain0", "chain1"}

    def test_live_reference_prevents_elimination(self, store_manager, launch4):
        tasks, a, b, outs = _chain(store_manager, launch4)
        outs[0].add_application_reference()
        temps = find_temporary_stores(tasks)
        assert outs[0] not in temps

    def test_downstream_reader_prevents_elimination(self, store_manager, launch4):
        tasks, a, b, outs = _chain(store_manager, launch4)
        part = natural_tiling((16,), launch4)
        extra = store_manager.create_store((16,))
        reader = IndexTask("copy", launch4, [
            StoreArg(outs[0], part, Privilege.READ),
            StoreArg(extra, part, Privilege.WRITE),
        ])
        temps = find_temporary_stores(tasks, remainder=[reader])
        assert outs[0] not in temps
        assert outs[1] in temps

    def test_partial_write_prevents_elimination(self, store_manager, launch4):
        """A store read before being fully defined is not temporary."""
        shape = (16,)
        part = natural_tiling(shape, launch4)
        partial = Tiling.create((2,), offset=(1,))
        store = store_manager.create_store(shape, name="partial")
        other = store_manager.create_store(shape, name="other")
        tasks = [
            IndexTask("fill", launch4, [StoreArg(store, partial, Privilege.WRITE)], (0.0,)),
            IndexTask("copy", launch4, [
                StoreArg(store, partial, Privilege.READ),
                StoreArg(other, part, Privilege.WRITE),
            ]),
        ]
        assert store not in find_temporary_stores(tasks)

    def test_inputs_never_temporary(self, store_manager, launch4):
        tasks, a, b, outs = _chain(store_manager, launch4)
        temps = find_temporary_stores(tasks)
        assert a not in temps and b not in temps


class TestMemoization:
    def _stream(self, manager, launch, shape=(16,)):
        part = natural_tiling(shape, launch)
        s = [manager.create_store(shape) for _ in range(3)]
        return [
            IndexTask("add", launch, [
                StoreArg(s[0], part, Privilege.READ),
                StoreArg(s[1], part, Privilege.READ),
                StoreArg(s[2], part, Privilege.WRITE),
            ]),
            IndexTask("multiply_scalar", launch, [
                StoreArg(s[2], part, Privilege.READ),
                StoreArg(s[0], part, Privilege.WRITE),
            ], (2.0,)),
        ], s

    def test_isomorphic_streams_share_key(self, store_manager, launch4):
        """Paper Figure 7: isomorphic streams canonicalise identically."""
        stream1, _ = self._stream(store_manager, launch4)
        stream2, _ = self._stream(store_manager, launch4)
        key1, _ = canonicalize_window(stream1)
        key2, _ = canonicalize_window(stream2)
        assert key1 == key2

    def test_differing_stream_has_different_key(self, store_manager, launch4):
        stream1, stores = self._stream(store_manager, launch4)
        part = natural_tiling((16,), launch4)
        different = [
            stream1[0],
            IndexTask("multiply_scalar", launch4, [
                StoreArg(stores[1], part, Privilege.READ),   # reads s1 instead of s2
                StoreArg(stores[0], part, Privilege.WRITE),
            ], (2.0,)),
        ]
        assert canonicalize_window(stream1)[0] != canonicalize_window(different)[0]

    def test_liveness_included_in_key(self, store_manager, launch4):
        stream1, stores1 = self._stream(store_manager, launch4)
        stream2, stores2 = self._stream(store_manager, launch4)
        stores2[2].add_application_reference()
        assert canonicalize_window(stream1)[0] != canonicalize_window(stream2)[0]

    def test_partition_pattern_included_in_key(self, store_manager, launch4):
        shape = (16,)
        s = [store_manager.create_store(shape) for _ in range(2)]
        tiled = natural_tiling(shape, launch4)
        task_tiled = IndexTask("copy", launch4, [
            StoreArg(s[0], tiled, Privilege.READ), StoreArg(s[1], tiled, Privilege.WRITE)])
        task_repl = IndexTask("copy", launch4, [
            StoreArg(s[0], Replication(), Privilege.READ), StoreArg(s[1], tiled, Privilege.WRITE)])
        assert canonicalize_window([task_tiled])[0] != canonicalize_window([task_repl])[0]

    def test_cache_hits_and_misses(self, store_manager, launch4):
        cache = MemoizationCache()
        stream, _ = self._stream(store_manager, launch4)
        key, _ = canonicalize_window(stream)
        assert cache.lookup(key) is None
        cache.store(key, FusionDecision(prefix_length=2, temporary_indices=(2,), fused=True))
        assert cache.lookup(key).prefix_length == 2
        assert cache.hits == 1 and cache.misses == 1
        cache.clear()
        assert len(cache) == 0

    def test_resolve_temporaries_maps_indices_to_stores(self, store_manager, launch4):
        stream, stores = self._stream(store_manager, launch4)
        key, index_map = canonicalize_window(stream)
        resolved = resolve_temporaries(stream, index_map, [index_map[stores[2].uid]])
        assert resolved == [stores[2]]


class TestDiffuseEngine:
    def _run_chain(self, fusion_config, num_gpus=4, length=6):
        """Mimic the frontend convention: every produced store holds an
        application reference while tasks are being issued, and references
        to intermediates are dropped (as Python would) before the flush."""
        fusion_config.initial_window_size = max(fusion_config.initial_window_size, 32)
        manager = StoreManager()
        launch = Domain((num_gpus,))
        runtime = LegionRuntime(MachineConfig(num_gpus=num_gpus))
        engine = DiffuseRuntime(runtime=runtime, config=fusion_config)
        tasks, a, b, outs = _chain(manager, launch, length=length, live_refs=True)
        runtime.attach_array(a, np.arange(16, dtype=np.float64))
        runtime.attach_array(b, np.ones(16))
        for task in tasks:
            engine.submit(task)
        for out in outs[:-1]:
            out.remove_application_reference()
        engine.flush_window()
        return engine, runtime, outs

    def test_functional_equivalence_with_and_without_fusion(self):
        fused_engine, fused_runtime, fused_outs = self._run_chain(FusionConfig(enable_fusion=True))
        plain_engine, plain_runtime, plain_outs = self._run_chain(FusionConfig(enable_fusion=False))
        np.testing.assert_allclose(
            fused_runtime.read_array(fused_outs[-1]),
            plain_runtime.read_array(plain_outs[-1]),
        )

    def test_fusion_reduces_launched_tasks(self):
        engine, runtime, _ = self._run_chain(FusionConfig(enable_fusion=True))
        assert runtime.profiler.total_index_tasks < engine.stats.submitted_tasks
        assert runtime.profiler.total_constituent_tasks == engine.stats.submitted_tasks
        assert engine.stats.fused_tasks >= 1
        assert engine.stats.temporaries_eliminated >= 1

    def test_pass_through_when_disabled(self):
        engine, runtime, _ = self._run_chain(FusionConfig(enable_fusion=False))
        assert runtime.profiler.total_index_tasks == engine.stats.submitted_tasks
        assert engine.stats.fused_tasks == 0

    def test_memoization_avoids_recompilation(self):
        config = FusionConfig(enable_fusion=True, enable_memoization=True)
        manager = StoreManager()
        launch = Domain((4,))
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        engine = DiffuseRuntime(runtime=runtime, config=config)
        for _ in range(3):
            tasks, a, b, outs = _chain(manager, launch, length=4)
            runtime.attach_array(a, np.arange(16, dtype=np.float64))
            runtime.attach_array(b, np.ones(16))
            for task in tasks:
                engine.submit(task)
            engine.flush_window()
        assert engine.compiler.stats.compilations == 1
        assert engine.cache.hits >= 1

    def test_task_fusion_only_keeps_kernel_structure(self):
        config = FusionConfig(
            enable_fusion=True,
            enable_kernel_fusion=False,
            enable_temporary_elimination=False,
        )
        engine, runtime, outs = self._run_chain(config)
        # Task fusion happened...
        assert engine.stats.fused_tasks >= 1
        # ...but each fused launch still runs one kernel per constituent.
        fused_records = [r for r in runtime.profiler.records if r.fused]
        assert all(record.launches == record.constituents for record in fused_records)

    def test_kernel_fusion_reduces_launches(self):
        engine, runtime, _ = self._run_chain(FusionConfig(enable_fusion=True))
        fused_records = [r for r in runtime.profiler.records if r.fused]
        assert all(record.launches < record.constituents for record in fused_records)

    def test_scalar_read_forces_flush(self):
        manager = StoreManager()
        launch = Domain((4,))
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        engine = DiffuseRuntime(runtime=runtime)
        part = natural_tiling((16,), launch)
        data = manager.create_store((16,))
        result = manager.create_scalar_store()
        runtime.attach_array(data, np.full(16, 3.0))
        engine.submit(IndexTask("sum_reduce", launch, [
            StoreArg(data, part, Privilege.READ),
            StoreArg(result, Replication(), Privilege.REDUCE, ReductionOp.ADD),
        ]))
        assert engine.read_scalar(result) == pytest.approx(48.0)
        assert engine.window.empty
