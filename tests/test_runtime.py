"""Tests for the runtime substrate: machine model, regions, coherence, execution."""

import numpy as np
import pytest

from repro.ir.domain import Domain
from repro.ir.partition import Replication, Tiling, natural_tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.coherence import CoherenceTracker
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import OpaqueTaskRegistry, register_opaque_task
from repro.runtime.profiler import Profiler
from repro.runtime.region import RegionField, RegionManager
from repro.runtime.runtime import LegionRuntime, UnexecutableTaskError


class TestMachineConfig:
    def test_topology(self):
        machine = MachineConfig(num_gpus=16, gpus_per_node=8)
        assert machine.num_nodes == 2
        assert machine.multi_node
        assert MachineConfig(num_gpus=4).num_nodes == 1
        assert not MachineConfig(num_gpus=4).multi_node

    def test_interconnect_selection(self):
        intra = MachineConfig(num_gpus=4)
        inter = MachineConfig(num_gpus=64)
        assert intra.interconnect_bandwidth() == intra.nvlink_bandwidth
        assert inter.interconnect_bandwidth() == inter.infiniband_bandwidth

    def test_communication_costs_scale(self):
        machine = MachineConfig(num_gpus=8)
        assert machine.point_to_point_time(0) == 0.0
        assert machine.point_to_point_time(1 << 20) > machine.network_latency
        assert machine.allgather_time(1 << 20) > machine.point_to_point_time(1 << 20)
        assert MachineConfig(num_gpus=1).allreduce_time(1 << 20) == 0.0
        assert machine.scalar_reduction_time() > 0.0

    def test_with_gpus(self):
        machine = MachineConfig(num_gpus=1).with_gpus(32)
        assert machine.num_gpus == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(num_gpus=0)


class TestRegions:
    def test_field_allocation_and_views(self, store_manager):
        manager = RegionManager()
        store = store_manager.create_store((4, 4))
        field = manager.field(store)
        assert field.data.shape == (4, 4)
        view = field.view(natural_tiling((4, 4), Domain((2, 2))).sub_store_rect((1, 1), (4, 4)))
        view[...] = 7.0
        assert field.data[2:, 2:].min() == 7.0
        assert manager.field(store) is field
        assert manager.allocated_fields == 1
        assert manager.allocated_bytes == 16 * 8

    def test_attach_shape_checked(self, store_manager):
        manager = RegionManager()
        store = store_manager.create_store((4,))
        with pytest.raises(ValueError):
            manager.attach(store, np.zeros((5,)))

    def test_scalar_read_write(self, store_manager):
        field = RegionField(store_manager.create_scalar_store())
        field.write_scalar(4.5)
        assert field.read_scalar() == 4.5

    def test_release(self, store_manager):
        manager = RegionManager()
        store = store_manager.create_store((4,))
        manager.field(store)
        manager.release(store)
        assert not manager.has_field(store)


class TestCoherence:
    def _task(self, store, partition, privilege, launch, redop=None):
        return IndexTask("t", launch, [StoreArg(store, partition, privilege, redop)])

    def test_no_cost_on_single_gpu(self, store_manager, launch4):
        tracker = CoherenceTracker(MachineConfig(num_gpus=1))
        store = store_manager.create_store((64,))
        part = natural_tiling((64,), launch4)
        write = self._task(store, part, Privilege.WRITE, launch4)
        read = self._task(store, Replication(), Privilege.READ, launch4)
        assert tracker.communication_seconds(write) == 0.0
        assert tracker.communication_seconds(read) == 0.0

    def test_same_partition_read_is_free(self, store_manager, launch4):
        tracker = CoherenceTracker(MachineConfig(num_gpus=4))
        store = store_manager.create_store((64,))
        part = natural_tiling((64,), launch4)
        tracker.communication_seconds(self._task(store, part, Privilege.WRITE, launch4))
        assert tracker.communication_seconds(self._task(store, part, Privilege.READ, launch4)) == 0.0

    def test_replicated_read_after_tiled_write_costs(self, store_manager, launch4):
        tracker = CoherenceTracker(MachineConfig(num_gpus=4))
        store = store_manager.create_store((1 << 16,))
        part = natural_tiling((1 << 16,), launch4)
        tracker.communication_seconds(self._task(store, part, Privilege.WRITE, launch4))
        cost = tracker.communication_seconds(self._task(store, Replication(), Privilege.READ, launch4))
        assert cost > 0.0
        assert tracker.total_bytes_moved > 0.0
        # A second replicated read with no intervening write is free.
        assert tracker.communication_seconds(self._task(store, Replication(), Privilege.READ, launch4)) == 0.0

    def test_halo_exchange_cost(self, store_manager):
        launch = Domain((4,))
        tracker = CoherenceTracker(MachineConfig(num_gpus=4))
        store = store_manager.create_store((1026,))
        interior = Tiling.create((256,), offset=(1,))
        shifted = Tiling.create((256,), offset=(0,))
        tracker.communication_seconds(self._task(store, interior, Privilege.WRITE, launch))
        cost = tracker.communication_seconds(self._task(store, shifted, Privilege.READ, launch))
        assert cost > 0.0

    def test_reduction_cost_and_invalidation(self, store_manager, launch4):
        tracker = CoherenceTracker(MachineConfig(num_gpus=8))
        scalar = store_manager.create_scalar_store()
        task = self._task(scalar, Replication(), Privilege.REDUCE, launch4, ReductionOp.ADD)
        assert tracker.communication_seconds(task) > 0.0
        tracker.invalidate(scalar)
        assert tracker.state(scalar).valid_partition is None

    def test_host_write_resets_state(self, store_manager, launch4):
        tracker = CoherenceTracker(MachineConfig(num_gpus=4))
        store = store_manager.create_store((64,))
        part = natural_tiling((64,), launch4)
        tracker.communication_seconds(self._task(store, part, Privilege.WRITE, launch4))
        tracker.invalidate(store)
        assert tracker.communication_seconds(self._task(store, Replication(), Privilege.READ, launch4)) == 0.0


class TestProfiler:
    def test_iteration_statistics(self):
        profiler = Profiler()
        profiler.begin_iteration()
        profiler.record_task("a", constituents=3, kernel_seconds=0.002,
                             communication_seconds=0.0, overhead_seconds=0.001,
                             launches=1, fused=True)
        profiler.begin_iteration()
        profiler.record_task("b", constituents=1, kernel_seconds=0.004,
                             communication_seconds=0.001, overhead_seconds=0.001,
                             launches=1, fused=False)
        assert profiler.total_index_tasks == 2
        assert profiler.total_constituent_tasks == 4
        assert profiler.tasks_per_iteration(fused_view=True) == 1.0
        assert profiler.tasks_per_iteration(fused_view=False) == 2.0
        assert profiler.throughput() > 0.0
        assert profiler.throughput(skip_warmup=1) == pytest.approx(1.0 / 0.006)
        assert profiler.average_task_length_seconds() == pytest.approx(0.003)
        profiler.record_compile_time(0.5)
        profiler.record_analysis_time(0.1)
        assert profiler.compile_seconds == 0.5
        profiler.reset()
        assert profiler.total_index_tasks == 0


class TestRuntimeExecution:
    def test_elementwise_execution_matches_numpy(self, store_manager, launch4):
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        part = natural_tiling((16,), launch4)
        a = store_manager.create_store((16,))
        b = store_manager.create_store((16,))
        c = store_manager.create_store((16,))
        runtime.attach_array(a, np.arange(16, dtype=np.float64))
        runtime.attach_array(b, np.full(16, 5.0))
        seconds = runtime.submit(IndexTask("multiply", launch4, [
            StoreArg(a, part, Privilege.READ),
            StoreArg(b, part, Privilege.READ),
            StoreArg(c, part, Privilege.WRITE),
        ]))
        assert seconds > 0.0
        np.testing.assert_allclose(runtime.read_array(c), np.arange(16) * 5.0)
        assert runtime.simulated_seconds == pytest.approx(seconds)

    def test_reduction_folds_across_points(self, store_manager, launch4):
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        part = natural_tiling((16,), launch4)
        data = store_manager.create_store((16,))
        result = store_manager.create_scalar_store()
        runtime.attach_array(data, np.arange(16, dtype=np.float64))
        runtime.submit(IndexTask("sum_reduce", launch4, [
            StoreArg(data, part, Privilege.READ),
            StoreArg(result, Replication(), Privilege.REDUCE, ReductionOp.ADD),
        ]))
        assert runtime.read_scalar(result) == pytest.approx(np.arange(16).sum())

    def test_max_reduction(self, store_manager, launch4):
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        part = natural_tiling((16,), launch4)
        data = store_manager.create_store((16,))
        result = store_manager.create_scalar_store()
        runtime.write_scalar(result, float("-inf"))
        runtime.attach_array(data, np.arange(16, dtype=np.float64))
        runtime.submit(IndexTask("max_reduce", launch4, [
            StoreArg(data, part, Privilege.READ),
            StoreArg(result, Replication(), Privilege.REDUCE, ReductionOp.MAX),
        ]))
        assert runtime.read_scalar(result) == pytest.approx(15.0)

    def test_opaque_task_execution(self, store_manager, launch4):
        registry = OpaqueTaskRegistry()

        def execute(task, point, buffers):
            buffers[1][...] = buffers[0] * 2.0
            return None

        def cost(task, point, buffers, machine):
            return 1e-3

        register_opaque_task("double", execute, cost, registry=registry)
        runtime = LegionRuntime(MachineConfig(num_gpus=4), opaque_registry=registry)
        part = natural_tiling((16,), launch4)
        a = store_manager.create_store((16,))
        b = store_manager.create_store((16,))
        runtime.attach_array(a, np.arange(16, dtype=np.float64))
        runtime.submit(IndexTask("double", launch4, [
            StoreArg(a, part, Privilege.READ),
            StoreArg(b, part, Privilege.WRITE),
        ]))
        np.testing.assert_allclose(runtime.read_array(b), np.arange(16) * 2.0)

    def test_unknown_task_rejected(self, store_manager, launch4):
        runtime = LegionRuntime(MachineConfig(num_gpus=4), opaque_registry=OpaqueTaskRegistry())
        part = natural_tiling((16,), launch4)
        a = store_manager.create_store((16,))
        with pytest.raises(UnexecutableTaskError):
            runtime.submit(IndexTask("no_such_task", launch4, [StoreArg(a, part, Privilege.READ)]))

    def test_fill_and_reset(self, store_manager):
        runtime = LegionRuntime(MachineConfig(num_gpus=2))
        store = store_manager.create_store((8,))
        runtime.fill(store, 3.0)
        assert runtime.read_array(store).min() == 3.0
        runtime.reset_profiling()
        assert runtime.simulated_seconds == 0.0
