"""``Profiler.reset()`` must restore exactly the freshly-built state.

The profiler grows a few counters every PR; a counter added to
``__init__`` but forgotten in ``reset()`` silently leaks state across
experiment runs that reuse a context.  This regression test compares a
reset profiler against a fresh one field by field — discovering the
fields from ``__init__`` itself, so a newly added counter is covered the
day it lands — and checks :meth:`Profiler.snapshot` the same way.
"""

from __future__ import annotations

import threading

from repro.runtime.profiler import Profiler


def _public_state(profiler: Profiler) -> dict:
    """Every non-lock attribute of the profiler, by name."""
    lock_type = type(threading.Lock())
    return {
        name: value
        for name, value in vars(profiler).items()
        if not isinstance(value, lock_type)
    }


def _dirty(profiler: Profiler) -> None:
    """Touch every counter the instrumented layers mutate."""
    profiler.begin_iteration()
    profiler.record_task(
        name="t",
        constituents=3,
        kernel_seconds=1.0,
        communication_seconds=0.5,
        overhead_seconds=0.1,
        launches=2,
        fused=True,
    )
    profiler.compile_seconds = 1.5
    profiler.analysis_seconds = 0.25
    profiler.trace_hits = 7
    profiler.trace_misses = 2
    profiler.trace_replayed_tasks = 11
    profiler.plan_replays = 5
    profiler.plan_steps = 20
    profiler.plan_levels = 10
    profiler.plan_width_max = 3
    profiler.plan_dispatched_steps = 12
    profiler.plan_level_widths.update({1: 4, 3: 2})
    profiler.point_launches = 6
    profiler.point_chunks = 24
    profiler.point_ranks = 96
    profiler.point_width_max = 4
    profiler.point_width_budget = 32
    profiler.point_thread_chunks = 8
    profiler.point_process_chunks = 16
    profiler.batched_launches = 3
    profiler.batched_calls = 9
    profiler.opaque_rank_calls = 10
    profiler.opaque_chunk_calls = 4
    profiler.opaque_process_chunks = 2
    profiler.scalar_pattern_flips = 1
    profiler.superkernel_fusions = 2
    profiler.superkernel_fused_steps = 6
    profiler.superkernel_calls = 12
    profiler.replay_closure_calls = 40
    profiler.wire_bytes = 4096
    profiler.wire_requests = 17


def test_reset_equals_fresh_field_by_field():
    dirty = Profiler()
    _dirty(dirty)
    dirty.reset()
    fresh_state = _public_state(Profiler())
    reset_state = _public_state(dirty)
    assert set(reset_state) == set(fresh_state)
    for name, fresh_value in fresh_state.items():
        assert reset_state[name] == fresh_value, (
            f"Profiler.reset() left '{name}' at {reset_state[name]!r}; "
            f"a fresh profiler has {fresh_value!r}"
        )


def test_dirty_profiler_differs_from_fresh_everywhere():
    """The dirtying helper really exercises every resettable field."""
    dirty = Profiler()
    _dirty(dirty)
    fresh_state = _public_state(Profiler())
    dirty_state = _public_state(dirty)
    unchanged = [
        name for name in fresh_state if dirty_state[name] == fresh_state[name]
    ]
    assert unchanged == [], (
        f"fields the dirtying helper missed (add them there AND check "
        f"reset() covers them): {unchanged}"
    )


def test_snapshot_reflects_counters_and_reset():
    profiler = Profiler()
    _dirty(profiler)
    snapshot = profiler.snapshot()
    assert snapshot["trace_hits"] == 7
    assert snapshot["plan_level_widths"] == {1: 4, 3: 2}
    assert snapshot["wire_bytes"] == 4096
    assert snapshot["total_index_tasks"] == 1
    assert snapshot["total_constituent_tasks"] == 3
    assert snapshot["trace_hit_rate"] == 7 / 9
    # JSON-serialisable by construction.
    import json

    json.dumps(snapshot)
    profiler.reset()
    assert profiler.snapshot() == Profiler().snapshot()
