"""Tests for the kernel optimisation passes (compose, fuse, scalarise, CSE, DCE)."""

import numpy as np
import pytest

from repro.ir.domain import Domain
from repro.ir.partition import Replication, natural_tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import StoreManager
from repro.ir.task import FusedTask, IndexTask, StoreArg, combine_arguments
from repro.kernel.builder import KernelBuilder
from repro.kernel.generators import default_registry
from repro.kernel.kir import Alloc, Assign, Loop, Reduce
from repro.kernel.lowering import lower
from repro.kernel.passes.compose import CompositionError, compose_fused_task, compose_task
from repro.kernel.passes.cse import eliminate_common_subexpressions
from repro.kernel.passes.dce import eliminate_dead_code
from repro.kernel.passes.loop_fusion import count_loops, fuse_loops
from repro.kernel.passes.parallelize import parallelize_loops
from repro.kernel.passes.pipeline import PassPipeline, default_pipeline
from repro.kernel.passes.temp_elimination import scalarize_temporaries


def _chain_tasks(manager, launch, length=3, shape=(16,)):
    """Build a chain a -> t1 -> t2 ... -> out of element-wise adds."""
    part = natural_tiling(shape, launch)
    a = manager.create_store(shape, name="a")
    b = manager.create_store(shape, name="b")
    tasks = []
    current = a
    intermediates = []
    for index in range(length):
        out = manager.create_store(shape, name=f"t{index}")
        tasks.append(
            IndexTask(
                "add",
                launch,
                [
                    StoreArg(current, part, Privilege.READ),
                    StoreArg(b, part, Privilege.READ),
                    StoreArg(out, part, Privilege.WRITE),
                ],
            )
        )
        intermediates.append(out)
        current = out
    return tasks, a, b, intermediates


class TestCompose:
    def test_paper_figure8_composition(self, store_manager, launch4):
        """c = a + b; e = c + d composes into two loops with an alloc for c."""
        shape = (16,)
        part = natural_tiling(shape, launch4)
        a, b, c, d, e = (store_manager.create_store(shape, name=n) for n in "abcde")
        t1 = IndexTask("add", launch4, [
            StoreArg(a, part, Privilege.READ), StoreArg(b, part, Privilege.READ),
            StoreArg(c, part, Privilege.WRITE)])
        t2 = IndexTask("add", launch4, [
            StoreArg(c, part, Privilege.READ), StoreArg(d, part, Privilege.READ),
            StoreArg(e, part, Privilege.WRITE)])
        fused = FusedTask([t1, t2], combine_arguments([t1, t2], [c]), temporary_stores=[c])
        function, binding = compose_fused_task(fused, default_registry())
        assert len(function.loops) == 2
        assert len(function.allocs) == 1
        assert function.allocs[0].name in binding.temporaries
        # Four distinct views (a, b, d, e) remain kernel parameters.
        assert len(function.buffer_params) == 4

    def test_shared_views_share_parameters(self, store_manager, launch4):
        """dot(r, r) maps both read arguments to the same kernel buffer."""
        shape = (16,)
        part = natural_tiling(shape, launch4)
        r = store_manager.create_store(shape)
        result = store_manager.create_scalar_store()
        task = IndexTask("dot", launch4, [
            StoreArg(r, part, Privilege.READ),
            StoreArg(r, part, Privilege.READ),
            StoreArg(result, Replication(), Privilege.REDUCE, ReductionOp.ADD),
        ])
        function, binding = compose_task(task, default_registry())
        assert len(function.buffer_params) == 2
        assert set(binding.buffer_args.values()) == {0, 2}

    def test_scalar_arguments_renumbered(self, store_manager, launch4):
        shape = (16,)
        part = natural_tiling(shape, launch4)
        a, b, c = (store_manager.create_store(shape) for _ in range(3))
        t1 = IndexTask("fill", launch4, [StoreArg(a, part, Privilege.WRITE)], (2.0,))
        t2 = IndexTask("multiply_scalar", launch4, [
            StoreArg(a, part, Privilege.READ), StoreArg(b, part, Privilege.WRITE)], (3.0,))
        fused = FusedTask([t1, t2], combine_arguments([t1, t2]))
        function, binding = compose_fused_task(fused, default_registry())
        assert {p.name for p in function.scalar_params} == {"s0", "s1"}
        assert binding.scalar_args == {"s0": 0, "s1": 1}

    def test_opaque_task_raises(self, store_manager, launch4):
        shape = (16,)
        part = natural_tiling(shape, launch4)
        a = store_manager.create_store(shape)
        task = IndexTask("spmv_csr", launch4, [StoreArg(a, part, Privilege.READ)])
        with pytest.raises(CompositionError):
            compose_task(task, default_registry())


class TestLoopFusion:
    def _composed_chain(self, store_manager, launch4, temporaries):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        fused = FusedTask(tasks, combine_arguments(tasks, temporaries), temporary_stores=temporaries)
        return compose_fused_task(fused, default_registry())

    def test_same_space_loops_fuse(self, store_manager, launch4):
        function, binding = self._composed_chain(store_manager, launch4, [])
        assert count_loops(function) == 3
        fused = fuse_loops(function, binding)
        assert count_loops(fused) == 1

    def test_fused_loop_prefers_non_temporary_index(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        temps = intermediates[:-1]
        fused_task = FusedTask(tasks, combine_arguments(tasks, temps), temporary_stores=temps)
        function, binding = compose_fused_task(fused_task, default_registry())
        fused = fuse_loops(function, binding)
        assert count_loops(fused) == 1
        assert fused.loops[0].index_buffer not in binding.temporaries

    def test_different_spaces_do_not_fuse(self, store_manager, launch4):
        part_small = natural_tiling((8,), launch4)
        part_big = natural_tiling((32,), launch4)
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        c = store_manager.create_store((32,))
        d = store_manager.create_store((32,))
        t1 = IndexTask("copy", launch4, [StoreArg(a, part_small, Privilege.READ),
                                         StoreArg(b, part_small, Privilege.WRITE)])
        t2 = IndexTask("copy", launch4, [StoreArg(c, part_big, Privilege.READ),
                                         StoreArg(d, part_big, Privilege.WRITE)])
        fused = FusedTask([t1, t2], combine_arguments([t1, t2]))
        function, binding = compose_fused_task(fused, default_registry())
        assert count_loops(fuse_loops(function, binding)) == 2


class TestTemporaryScalarisation:
    def test_single_loop_temporary_becomes_local(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4, length=2)
        temps = intermediates[:1]
        fused_task = FusedTask(tasks, combine_arguments(tasks, temps), temporary_stores=temps)
        function, binding = compose_fused_task(fused_task, default_registry())
        function = fuse_loops(function, binding)
        function = scalarize_temporaries(function, binding)
        assert len(function.allocs) == 0
        # The temporary's value now flows through a loop-local scalar.
        locals_used = [stmt for stmt in function.loops[0].body if isinstance(stmt, Assign) and stmt.is_local]
        assert locals_used

    def test_multi_loop_temporary_keeps_allocation(self, store_manager, launch4):
        """When loops cannot fuse, the temporary stays a task-local buffer."""
        part_a = natural_tiling((8,), launch4)
        part_c = natural_tiling((32,), launch4)
        a = store_manager.create_store((8,))
        t = store_manager.create_store((8,))
        c = store_manager.create_store((32,))
        d = store_manager.create_store((32,))
        t1 = IndexTask("copy", launch4, [StoreArg(a, part_a, Privilege.READ),
                                         StoreArg(t, part_a, Privilege.WRITE)])
        t2 = IndexTask("copy", launch4, [StoreArg(c, part_c, Privilege.READ),
                                         StoreArg(d, part_c, Privilege.WRITE)])
        t3 = IndexTask("copy", launch4, [StoreArg(t, part_a, Privilege.READ),
                                         StoreArg(a, part_a, Privilege.WRITE)])
        fused_task = FusedTask([t1, t2, t3], combine_arguments([t1, t2, t3], [t]), temporary_stores=[t])
        function, binding = compose_fused_task(fused_task, default_registry())
        function = fuse_loops(function, binding)
        function = scalarize_temporaries(function, binding)
        assert len(function.allocs) == 1


class TestCSEAndDCE:
    def test_cse_hoists_repeated_expression(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "b", "c")
        expensive = KernelBuilder.mul(KernelBuilder.add("a", "b"), KernelBuilder.add("a", "b"))
        builder.loop("c").assign("c", expensive).end_loop()
        function = eliminate_common_subexpressions(builder.build())
        body = function.loops[0].body
        locals_defined = [stmt for stmt in body if isinstance(stmt, Assign) and stmt.is_local]
        assert len(locals_defined) == 1

    def test_cse_respects_redefinition(self):
        """Occurrences of "a + b" before and after a redefinition of ``a``
        must not share a hoisted value; semantics are checked by executing
        the original and optimised kernels."""
        builder = KernelBuilder("k")
        builder.buffers("a", "b")
        builder.loop("b")
        builder.assign("b", KernelBuilder.add("a", "b"))
        builder.assign("a", 0.0)
        builder.assign("b", KernelBuilder.add("a", "b"))
        builder.end_loop()
        original = builder.build()
        optimized = eliminate_common_subexpressions(original)
        from repro.kernel.passes.compose import KernelBinding

        results = []
        for function in (original, optimized):
            a = np.arange(4.0)
            b = np.full(4, 2.0)
            lower(function, KernelBinding())({"a": a, "b": b}, {})
            results.append((a.copy(), b.copy()))
        np.testing.assert_allclose(results[0][0], results[1][0])
        np.testing.assert_allclose(results[0][1], results[1][1])

    def test_cse_preserves_semantics(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "b", "out")
        expr = KernelBuilder.add(KernelBuilder.mul("a", "b"), KernelBuilder.mul("a", "b"))
        builder.loop("out").assign("out", expr).end_loop()
        original = builder.build()
        optimized = eliminate_common_subexpressions(original)
        a = np.arange(8.0)
        b = np.full(8, 3.0)
        from repro.kernel.passes.compose import KernelBinding

        for function in (original, optimized):
            out = np.zeros(8)
            lower(function, KernelBinding())({"a": a, "b": b, "out": out}, {})
            np.testing.assert_allclose(out, 2 * a * b)

    def test_dce_removes_dead_stores_and_allocs(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("out")
        builder.assign("out", KernelBuilder.add("a", 1.0))
        builder.end_loop()
        function = builder.build()
        # Manually add a dead allocation written but never read.
        dead_loop = Loop(index_buffer="out", body=(Assign(target="dead", expr=KernelBuilder.add("a", 2.0)),))
        function = function.with_body((Alloc("dead", "a"),) + function.body + (dead_loop,))
        cleaned = eliminate_dead_code(function)
        assert all(not isinstance(stmt, Alloc) for stmt in cleaned.body)
        assert "dead" not in cleaned.buffers_written()

    def test_dce_keeps_parameter_writes(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("out").assign("out", "a").end_loop()
        function = eliminate_dead_code(builder.build())
        assert function.buffers_written() == {"out"}

    def test_dce_removes_dead_locals(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("out")
        builder.let("unused", KernelBuilder.add("a", 1.0))
        builder.assign("out", "a")
        builder.end_loop()
        cleaned = eliminate_dead_code(builder.build())
        assert all(
            not (isinstance(stmt, Assign) and stmt.is_local) for stmt in cleaned.loops[0].body
        )


class TestParallelizeAndPipeline:
    def test_parallelize_marks_loops(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "b")
        builder.loop("b").assign("b", "a").end_loop()
        function = parallelize_loops(builder.build())
        assert all(loop.parallel for loop in function.loops)

    def test_default_pipeline_produces_single_parallel_loop(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        temps = intermediates[:-1]
        fused_task = FusedTask(tasks, combine_arguments(tasks, temps), temporary_stores=temps)
        function, binding = compose_fused_task(fused_task, default_registry())
        optimized = default_pipeline().run(function, binding)
        assert count_loops(optimized) == 1
        assert optimized.loops[0].parallel
        assert len(optimized.allocs) == 0

    def test_disabled_pipeline_keeps_structure(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        fused_task = FusedTask(tasks, combine_arguments(tasks))
        function, binding = compose_fused_task(fused_task, default_registry())
        pipeline = PassPipeline(
            enable_loop_fusion=False,
            enable_temporary_elimination=False,
            enable_cse=False,
            enable_dce=False,
            enable_parallelize=False,
        )
        untouched = pipeline.run(function, binding)
        assert count_loops(untouched) == 3


class TestNormalize:
    """Algebraic normalisation before CSE (bit-exact sign rewrites)."""

    def _normalize(self, function):
        from repro.kernel.passes.normalize import normalize_function

        return normalize_function(function)

    def test_neg_pulled_through_division_and_erf(self):
        from repro.kernel.kir import (
            Assign,
            BinOp,
            BinOpKind,
            Function,
            Load,
            LocalRef,
            Loop,
            Param,
            UnOp,
            UnOpKind,
        )

        loop = Loop(
            index_buffer="x",
            body=(
                Assign(
                    target="d",
                    expr=BinOp(BinOpKind.DIV, UnOp(UnOpKind.NEG, Load("x")), Load("y")),
                    is_local=True,
                ),
                Assign(target="out", expr=UnOp(UnOpKind.ERF, LocalRef("d"))),
            ),
        )
        function = Function(
            name="k",
            params=(Param.buffer("x"), Param.buffer("y"), Param.buffer("out")),
            body=(loop,),
        )
        normalized = self._normalize(function)
        new_loop = normalized.loops[0]
        # The local now stores the positive quotient...
        local_def = new_loop.body[0]
        assert isinstance(local_def, Assign) and local_def.is_local
        assert local_def.expr == BinOp(BinOpKind.DIV, Load("x"), Load("y"))
        # ...and the erf consumer sees neg(erf(d)), the sign outside.
        out_def = new_loop.body[1]
        assert out_def.expr == UnOp(
            UnOpKind.NEG, UnOp(UnOpKind.ERF, LocalRef("d"))
        )

    def test_double_negation_cancels(self):
        from repro.kernel.kir import Assign, Load, Loop, UnOp, UnOpKind

        loop = Loop(
            index_buffer="x",
            body=(
                Assign(
                    target="out",
                    expr=UnOp(UnOpKind.NEG, UnOp(UnOpKind.NEG, Load("x"))),
                ),
            ),
        )
        from repro.kernel.kir import Function, Param

        function = Function(
            name="k",
            params=(Param.buffer("x"), Param.buffer("out")),
            body=(loop,),
        )
        normalized = self._normalize(function)
        assert normalized.loops[0].body[0].expr == Load("x")

    def test_value_numbering_dedups_sign_twins(self):
        """x/y and neg(x)/y collapse to one division."""
        from repro.kernel.kir import (
            Assign,
            BinOp,
            BinOpKind,
            Function,
            Load,
            LocalRef,
            Loop,
            Param,
            UnOp,
            UnOpKind,
        )

        div = BinOp(BinOpKind.DIV, Load("x"), Load("y"))
        neg_div = BinOp(BinOpKind.DIV, UnOp(UnOpKind.NEG, Load("x")), Load("y"))
        loop = Loop(
            index_buffer="x",
            body=(
                Assign(target="p", expr=div, is_local=True),
                Assign(target="q", expr=neg_div, is_local=True),
                Assign(target="o1", expr=LocalRef("p")),
                Assign(target="o2", expr=LocalRef("q")),
            ),
        )
        function = Function(
            name="k",
            params=(Param.buffer("x"), Param.buffer("y"), Param.buffer("o1"), Param.buffer("o2")),
            body=(loop,),
        )
        normalized = self._normalize(function)
        body = normalized.loops[0].body
        # q aliases p; its consumer reads neg(p).
        assert body[1].expr == LocalRef("p")
        assert body[3].expr == UnOp(UnOpKind.NEG, LocalRef("p"))

    def test_buffer_write_invalidates_value_numbers(self):
        from repro.kernel.kir import (
            Assign,
            BinOp,
            BinOpKind,
            Function,
            Load,
            LocalRef,
            Loop,
            Param,
        )

        expr = BinOp(BinOpKind.MUL, Load("x"), Load("x"))
        loop = Loop(
            index_buffer="x",
            body=(
                Assign(target="p", expr=expr, is_local=True),
                Assign(target="x", expr=Load("y")),  # overwrites x
                Assign(target="q", expr=expr, is_local=True),
                Assign(
                    target="o1",
                    expr=BinOp(BinOpKind.ADD, LocalRef("p"), LocalRef("q")),
                ),
            ),
        )
        function = Function(
            name="k",
            params=(Param.buffer("x"), Param.buffer("y"), Param.buffer("o1")),
            body=(loop,),
        )
        normalized = self._normalize(function)
        body = normalized.loops[0].body
        # q must NOT alias p: x changed in between.
        assert body[2].expr == expr


class TestNormalizeBlackScholes:
    """Satellite acceptance: the erf(±d1/√2) pair deduplicates and the
    result stays bitwise identical (checked by the differential backend
    on every kernel invocation *and* by direct array comparison)."""

    def _run(self, normalize, monkeypatch):
        from repro import config
        from repro.apps.base import build_application
        from repro.experiments.harness import scaled_machine
        from repro.frontend.legate.context import RuntimeContext, set_context

        monkeypatch.setenv("REPRO_NORMALIZE", normalize)
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
        monkeypatch.setenv("REPRO_TRACE", "1")
        config.reload_flags()
        context = RuntimeContext(num_gpus=2, fusion=True, machine=scaled_machine(2, 1e-4))
        set_context(context)
        try:
            app = build_application("black-scholes", context=context, elements_per_gpu=128)
            app.run(6)
            call = app.call.to_numpy()
            put = app.put.to_numpy()
            # The steady-state kernel covering the whole pricing chain is
            # the one with the most fused constituents; partial warm-up
            # window rounds also sit in the cache.
            kernel = max(
                context.diffuse.compiler._cache.values(),
                key=lambda k: k.fused_count,
            )
            erf_count = _count_erf(kernel.function)
        finally:
            set_context(None)
            config.reload_flags()
        return call, put, erf_count

    def test_bitwise_equality_and_dedup(self, monkeypatch):
        call_off, put_off, erf_off = self._run("0", monkeypatch)
        call_on, put_on, erf_on = self._run("1", monkeypatch)
        # The un-normalised fused kernel evaluates erf four times; the
        # normalised one shares the ±d1 and ±d2 pairs.
        assert erf_off == 4
        assert erf_on == 2
        assert np.array_equal(call_on, call_off)
        assert np.array_equal(put_on, put_off)


def _count_erf(function):
    from repro.kernel.kir import Assign, BinOp, Loop, Reduce, UnOp, UnOpKind

    def count_expr(expr):
        if isinstance(expr, UnOp):
            inner = count_expr(expr.operand)
            return inner + (1 if expr.op is UnOpKind.ERF else 0)
        if isinstance(expr, BinOp):
            return count_expr(expr.lhs) + count_expr(expr.rhs)
        return 0

    total = 0
    for loop in function.loops:
        for stmt in loop.body:
            if isinstance(stmt, (Assign, Reduce)):
                total += count_expr(stmt.expr)
    return total


class TestErfExactlyOdd:
    """The erf(neg(x)) -> neg(erf(x)) rewrite requires _erf to be odd
    bit-for-bit, including signed zeros (IEEE: erf(-0.0) == -0.0)."""

    def test_erf_odd_at_zero_and_elsewhere(self):
        import struct

        from repro.kernel.kir import _erf

        def bits(value):
            return struct.pack("<d", float(value))

        assert bits(_erf(np.float64(-0.0))) == bits(-np.float64(0.0))
        assert bits(_erf(np.float64(0.0))) == bits(np.float64(0.0))
        for value in (0.5, -0.5, 3.0, 1e-300, -1e-300, np.inf, -np.inf):
            x = np.float64(value)
            assert bits(_erf(-x)) == bits(-_erf(x)), value
