"""Tests for the kernel optimisation passes (compose, fuse, scalarise, CSE, DCE)."""

import numpy as np
import pytest

from repro.ir.domain import Domain
from repro.ir.partition import Replication, natural_tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import StoreManager
from repro.ir.task import FusedTask, IndexTask, StoreArg, combine_arguments
from repro.kernel.builder import KernelBuilder
from repro.kernel.generators import default_registry
from repro.kernel.kir import Alloc, Assign, Loop, Reduce
from repro.kernel.lowering import lower
from repro.kernel.passes.compose import CompositionError, compose_fused_task, compose_task
from repro.kernel.passes.cse import eliminate_common_subexpressions
from repro.kernel.passes.dce import eliminate_dead_code
from repro.kernel.passes.loop_fusion import count_loops, fuse_loops
from repro.kernel.passes.parallelize import parallelize_loops
from repro.kernel.passes.pipeline import PassPipeline, default_pipeline
from repro.kernel.passes.temp_elimination import scalarize_temporaries


def _chain_tasks(manager, launch, length=3, shape=(16,)):
    """Build a chain a -> t1 -> t2 ... -> out of element-wise adds."""
    part = natural_tiling(shape, launch)
    a = manager.create_store(shape, name="a")
    b = manager.create_store(shape, name="b")
    tasks = []
    current = a
    intermediates = []
    for index in range(length):
        out = manager.create_store(shape, name=f"t{index}")
        tasks.append(
            IndexTask(
                "add",
                launch,
                [
                    StoreArg(current, part, Privilege.READ),
                    StoreArg(b, part, Privilege.READ),
                    StoreArg(out, part, Privilege.WRITE),
                ],
            )
        )
        intermediates.append(out)
        current = out
    return tasks, a, b, intermediates


class TestCompose:
    def test_paper_figure8_composition(self, store_manager, launch4):
        """c = a + b; e = c + d composes into two loops with an alloc for c."""
        shape = (16,)
        part = natural_tiling(shape, launch4)
        a, b, c, d, e = (store_manager.create_store(shape, name=n) for n in "abcde")
        t1 = IndexTask("add", launch4, [
            StoreArg(a, part, Privilege.READ), StoreArg(b, part, Privilege.READ),
            StoreArg(c, part, Privilege.WRITE)])
        t2 = IndexTask("add", launch4, [
            StoreArg(c, part, Privilege.READ), StoreArg(d, part, Privilege.READ),
            StoreArg(e, part, Privilege.WRITE)])
        fused = FusedTask([t1, t2], combine_arguments([t1, t2], [c]), temporary_stores=[c])
        function, binding = compose_fused_task(fused, default_registry())
        assert len(function.loops) == 2
        assert len(function.allocs) == 1
        assert function.allocs[0].name in binding.temporaries
        # Four distinct views (a, b, d, e) remain kernel parameters.
        assert len(function.buffer_params) == 4

    def test_shared_views_share_parameters(self, store_manager, launch4):
        """dot(r, r) maps both read arguments to the same kernel buffer."""
        shape = (16,)
        part = natural_tiling(shape, launch4)
        r = store_manager.create_store(shape)
        result = store_manager.create_scalar_store()
        task = IndexTask("dot", launch4, [
            StoreArg(r, part, Privilege.READ),
            StoreArg(r, part, Privilege.READ),
            StoreArg(result, Replication(), Privilege.REDUCE, ReductionOp.ADD),
        ])
        function, binding = compose_task(task, default_registry())
        assert len(function.buffer_params) == 2
        assert set(binding.buffer_args.values()) == {0, 2}

    def test_scalar_arguments_renumbered(self, store_manager, launch4):
        shape = (16,)
        part = natural_tiling(shape, launch4)
        a, b, c = (store_manager.create_store(shape) for _ in range(3))
        t1 = IndexTask("fill", launch4, [StoreArg(a, part, Privilege.WRITE)], (2.0,))
        t2 = IndexTask("multiply_scalar", launch4, [
            StoreArg(a, part, Privilege.READ), StoreArg(b, part, Privilege.WRITE)], (3.0,))
        fused = FusedTask([t1, t2], combine_arguments([t1, t2]))
        function, binding = compose_fused_task(fused, default_registry())
        assert {p.name for p in function.scalar_params} == {"s0", "s1"}
        assert binding.scalar_args == {"s0": 0, "s1": 1}

    def test_opaque_task_raises(self, store_manager, launch4):
        shape = (16,)
        part = natural_tiling(shape, launch4)
        a = store_manager.create_store(shape)
        task = IndexTask("spmv_csr", launch4, [StoreArg(a, part, Privilege.READ)])
        with pytest.raises(CompositionError):
            compose_task(task, default_registry())


class TestLoopFusion:
    def _composed_chain(self, store_manager, launch4, temporaries):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        fused = FusedTask(tasks, combine_arguments(tasks, temporaries), temporary_stores=temporaries)
        return compose_fused_task(fused, default_registry())

    def test_same_space_loops_fuse(self, store_manager, launch4):
        function, binding = self._composed_chain(store_manager, launch4, [])
        assert count_loops(function) == 3
        fused = fuse_loops(function, binding)
        assert count_loops(fused) == 1

    def test_fused_loop_prefers_non_temporary_index(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        temps = intermediates[:-1]
        fused_task = FusedTask(tasks, combine_arguments(tasks, temps), temporary_stores=temps)
        function, binding = compose_fused_task(fused_task, default_registry())
        fused = fuse_loops(function, binding)
        assert count_loops(fused) == 1
        assert fused.loops[0].index_buffer not in binding.temporaries

    def test_different_spaces_do_not_fuse(self, store_manager, launch4):
        part_small = natural_tiling((8,), launch4)
        part_big = natural_tiling((32,), launch4)
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        c = store_manager.create_store((32,))
        d = store_manager.create_store((32,))
        t1 = IndexTask("copy", launch4, [StoreArg(a, part_small, Privilege.READ),
                                         StoreArg(b, part_small, Privilege.WRITE)])
        t2 = IndexTask("copy", launch4, [StoreArg(c, part_big, Privilege.READ),
                                         StoreArg(d, part_big, Privilege.WRITE)])
        fused = FusedTask([t1, t2], combine_arguments([t1, t2]))
        function, binding = compose_fused_task(fused, default_registry())
        assert count_loops(fuse_loops(function, binding)) == 2


class TestTemporaryScalarisation:
    def test_single_loop_temporary_becomes_local(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4, length=2)
        temps = intermediates[:1]
        fused_task = FusedTask(tasks, combine_arguments(tasks, temps), temporary_stores=temps)
        function, binding = compose_fused_task(fused_task, default_registry())
        function = fuse_loops(function, binding)
        function = scalarize_temporaries(function, binding)
        assert len(function.allocs) == 0
        # The temporary's value now flows through a loop-local scalar.
        locals_used = [stmt for stmt in function.loops[0].body if isinstance(stmt, Assign) and stmt.is_local]
        assert locals_used

    def test_multi_loop_temporary_keeps_allocation(self, store_manager, launch4):
        """When loops cannot fuse, the temporary stays a task-local buffer."""
        part_a = natural_tiling((8,), launch4)
        part_c = natural_tiling((32,), launch4)
        a = store_manager.create_store((8,))
        t = store_manager.create_store((8,))
        c = store_manager.create_store((32,))
        d = store_manager.create_store((32,))
        t1 = IndexTask("copy", launch4, [StoreArg(a, part_a, Privilege.READ),
                                         StoreArg(t, part_a, Privilege.WRITE)])
        t2 = IndexTask("copy", launch4, [StoreArg(c, part_c, Privilege.READ),
                                         StoreArg(d, part_c, Privilege.WRITE)])
        t3 = IndexTask("copy", launch4, [StoreArg(t, part_a, Privilege.READ),
                                         StoreArg(a, part_a, Privilege.WRITE)])
        fused_task = FusedTask([t1, t2, t3], combine_arguments([t1, t2, t3], [t]), temporary_stores=[t])
        function, binding = compose_fused_task(fused_task, default_registry())
        function = fuse_loops(function, binding)
        function = scalarize_temporaries(function, binding)
        assert len(function.allocs) == 1


class TestCSEAndDCE:
    def test_cse_hoists_repeated_expression(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "b", "c")
        expensive = KernelBuilder.mul(KernelBuilder.add("a", "b"), KernelBuilder.add("a", "b"))
        builder.loop("c").assign("c", expensive).end_loop()
        function = eliminate_common_subexpressions(builder.build())
        body = function.loops[0].body
        locals_defined = [stmt for stmt in body if isinstance(stmt, Assign) and stmt.is_local]
        assert len(locals_defined) == 1

    def test_cse_respects_redefinition(self):
        """Occurrences of "a + b" before and after a redefinition of ``a``
        must not share a hoisted value; semantics are checked by executing
        the original and optimised kernels."""
        builder = KernelBuilder("k")
        builder.buffers("a", "b")
        builder.loop("b")
        builder.assign("b", KernelBuilder.add("a", "b"))
        builder.assign("a", 0.0)
        builder.assign("b", KernelBuilder.add("a", "b"))
        builder.end_loop()
        original = builder.build()
        optimized = eliminate_common_subexpressions(original)
        from repro.kernel.passes.compose import KernelBinding

        results = []
        for function in (original, optimized):
            a = np.arange(4.0)
            b = np.full(4, 2.0)
            lower(function, KernelBinding())({"a": a, "b": b}, {})
            results.append((a.copy(), b.copy()))
        np.testing.assert_allclose(results[0][0], results[1][0])
        np.testing.assert_allclose(results[0][1], results[1][1])

    def test_cse_preserves_semantics(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "b", "out")
        expr = KernelBuilder.add(KernelBuilder.mul("a", "b"), KernelBuilder.mul("a", "b"))
        builder.loop("out").assign("out", expr).end_loop()
        original = builder.build()
        optimized = eliminate_common_subexpressions(original)
        a = np.arange(8.0)
        b = np.full(8, 3.0)
        from repro.kernel.passes.compose import KernelBinding

        for function in (original, optimized):
            out = np.zeros(8)
            lower(function, KernelBinding())({"a": a, "b": b, "out": out}, {})
            np.testing.assert_allclose(out, 2 * a * b)

    def test_dce_removes_dead_stores_and_allocs(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("out")
        builder.assign("out", KernelBuilder.add("a", 1.0))
        builder.end_loop()
        function = builder.build()
        # Manually add a dead allocation written but never read.
        dead_loop = Loop(index_buffer="out", body=(Assign(target="dead", expr=KernelBuilder.add("a", 2.0)),))
        function = function.with_body((Alloc("dead", "a"),) + function.body + (dead_loop,))
        cleaned = eliminate_dead_code(function)
        assert all(not isinstance(stmt, Alloc) for stmt in cleaned.body)
        assert "dead" not in cleaned.buffers_written()

    def test_dce_keeps_parameter_writes(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("out").assign("out", "a").end_loop()
        function = eliminate_dead_code(builder.build())
        assert function.buffers_written() == {"out"}

    def test_dce_removes_dead_locals(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("out")
        builder.let("unused", KernelBuilder.add("a", 1.0))
        builder.assign("out", "a")
        builder.end_loop()
        cleaned = eliminate_dead_code(builder.build())
        assert all(
            not (isinstance(stmt, Assign) and stmt.is_local) for stmt in cleaned.loops[0].body
        )


class TestParallelizeAndPipeline:
    def test_parallelize_marks_loops(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "b")
        builder.loop("b").assign("b", "a").end_loop()
        function = parallelize_loops(builder.build())
        assert all(loop.parallel for loop in function.loops)

    def test_default_pipeline_produces_single_parallel_loop(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        temps = intermediates[:-1]
        fused_task = FusedTask(tasks, combine_arguments(tasks, temps), temporary_stores=temps)
        function, binding = compose_fused_task(fused_task, default_registry())
        optimized = default_pipeline().run(function, binding)
        assert count_loops(optimized) == 1
        assert optimized.loops[0].parallel
        assert len(optimized.allocs) == 0

    def test_disabled_pipeline_keeps_structure(self, store_manager, launch4):
        tasks, a, b, intermediates = _chain_tasks(store_manager, launch4)
        fused_task = FusedTask(tasks, combine_arguments(tasks))
        function, binding = compose_fused_task(fused_task, default_registry())
        pipeline = PassPipeline(
            enable_loop_fusion=False,
            enable_temporary_elimination=False,
            enable_cse=False,
            enable_dce=False,
            enable_parallelize=False,
        )
        untouched = pipeline.run(function, binding)
        assert count_loops(untouched) == 3
