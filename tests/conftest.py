"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend.legate.context import RuntimeContext, set_context
from repro.ir.domain import Domain
from repro.ir.partition import Tiling, natural_tiling
from repro.ir.privilege import Privilege
from repro.ir.store import StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.machine import MachineConfig


@pytest.fixture(autouse=True, scope="session")
def _shutdown_dispatch_substrate():
    """Tear down the dispatch pools and shared-memory arenas after the run.

    Worker processes and ``/dev/shm`` segments outlive individual tests
    by design (the pools are process-wide singletons, the arenas are
    owned by region managers); this fixture — alongside the ``atexit``
    hooks and arena finalizers that cover non-pytest entry points —
    makes the cleanup deterministic so test runs never leak child
    processes or shared-memory segments, and the resource tracker has
    nothing left to warn about.
    """
    yield
    import gc

    from repro.runtime.pool import shutdown_shared_pool
    from repro.runtime.procpool import shutdown_process_pool

    shutdown_process_pool()
    shutdown_shared_pool()
    # Collect dropped region managers so their arena finalizers unlink
    # any remaining segments now rather than at interpreter exit.
    gc.collect()


@pytest.fixture
def store_manager():
    """A fresh store manager."""
    return StoreManager()


@pytest.fixture
def launch4():
    """A 1-D launch domain with four points."""
    return Domain((4,))


@pytest.fixture(params=[True, False], ids=["fused", "unfused"])
def any_context(request):
    """A runtime context in both fused and unfused configurations."""
    context = RuntimeContext(num_gpus=4, fusion=request.param)
    set_context(context)
    yield context
    set_context(None)


@pytest.fixture
def fused_context():
    """A 4-GPU context with fusion enabled."""
    context = RuntimeContext(num_gpus=4, fusion=True)
    set_context(context)
    yield context
    set_context(None)


@pytest.fixture
def unfused_context():
    """A 4-GPU context with fusion disabled (the paper's baseline)."""
    context = RuntimeContext(num_gpus=4, fusion=False)
    set_context(context)
    yield context
    set_context(None)


@pytest.fixture
def single_gpu_context():
    """A single-GPU context with fusion enabled."""
    context = RuntimeContext(num_gpus=1, fusion=True)
    set_context(context)
    yield context
    set_context(None)


def make_elementwise_task(manager, launch, name, inputs, output, scalars=()):
    """Helper building an element-wise task reading ``inputs``, writing ``output``."""
    args = [StoreArg(store, natural_tiling(store.shape, launch), Privilege.READ) for store in inputs]
    args.append(StoreArg(output, natural_tiling(output.shape, launch), Privilege.WRITE))
    return IndexTask(name, launch, args, scalar_args=scalars)
