"""Wide-plan process dispatch (width>1 levels feeding the process pool).

Acceptance bar for the guard lift: with the nested-dispatch guard
lifted for the process substrate, multiple in-flight steps of one wide
level ship rank chunks to the process pool concurrently and the
results stay bit-identical — buffers, checksums AND simulated seconds
— to the serial thread/1/1 baseline for every ``REPRO_DISPATCH_BACKEND``
× ``REPRO_WORKERS`` {1,4} × ``REPRO_POINT_WORKERS`` {1,4} combination,
asserted under the differential kernel backend with resident plans and
opaque chunk impls enabled.  The hammer runs the three apps this PR
promotes (CFD, TorchSWE in both variants, BiCGSTAB); the manually
fused TorchSWE variant is the wide anchor — its three independent
update operators form width-3 dependence levels.

Alongside the hammer: the guard-lift unit regression (pool workers
chunk under the process backend, stay serial under thread), and the
kill-a-worker-mid-run degradation test (a torn pool must degrade wide
levels to the thread substrate without changing a single bit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.runtime.procpool import shutdown_process_pool


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()
    shutdown_process_pool()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    """Zero both dispatch thresholds so tiny launches hit the pools."""
    import repro.runtime.executor as executor_module
    import repro.runtime.scheduler as scheduler_module

    monkeypatch.setattr(executor_module, "MIN_POINT_DISPATCH_VOLUME", 0)
    monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)


BACKENDS = ("thread", "process")
COMBOS = [(1, 1), (4, 1), (1, 4), (4, 4)]


def _set_flags(monkeypatch, backend, point_workers, workers):
    monkeypatch.setenv("REPRO_DISPATCH_BACKEND", backend)
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    monkeypatch.setenv("REPRO_RESIDENT_PLANS", "1")
    monkeypatch.setenv("REPRO_OPAQUE_CHUNKS", "1")
    config.reload_flags()


def _run_app(app_name, backend, point_workers, workers, monkeypatch, iterations, **kwargs):
    _set_flags(monkeypatch, backend, point_workers, workers)
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application(app_name, context=context, **kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


# ----------------------------------------------------------------------
# The width>1 differential hammer (satellite).
# ----------------------------------------------------------------------
class TestWideParity:
    """CFD / TorchSWE / BiCGSTAB across the full dispatch matrix.

    Every combination must reproduce the thread/1/1 baseline bit for
    bit.  ``torchswe-manual`` additionally asserts the wide plumbing
    actually engaged: its captured plans must record width-3 levels,
    and under process/4/4 its wide-level opaque chunks must ride the
    process substrate (chunk counters > 0) — a silent degrade to width
    1 or to the thread fallback fails the test, not just the bench.
    """

    # (app, kwargs, iterations, wide) — `wide` marks the app whose
    # captured plans are known to contain width>1 levels.
    APPS = [
        ("bicgstab", dict(grid_points_per_gpu=12), 5, False),
        ("cfd", dict(points_per_gpu=16, pressure_iterations=2), 4, False),
        ("torchswe", dict(points_per_gpu=16), 4, False),
        ("torchswe-manual", dict(points_per_gpu=16), 4, True),
    ]

    @pytest.mark.parametrize("app_name,kwargs,iterations,wide", APPS, ids=[a[0] for a in APPS])
    def test_matrix_bit_identical(self, app_name, kwargs, iterations, wide, monkeypatch):
        ctx_base, state_base, checksum_base = _run_app(
            app_name, "thread", 1, 1, monkeypatch, iterations, **kwargs
        )
        for backend in BACKENDS:
            for point_workers, workers in COMBOS:
                if backend == "thread" and (point_workers, workers) == (1, 1):
                    continue
                ctx, state, checksum = _run_app(
                    app_name, backend, point_workers, workers,
                    monkeypatch, iterations, **kwargs,
                )
                label = f"{app_name} {backend} point={point_workers} workers={workers}"
                assert checksum == checksum_base, label
                assert set(state) == set(state_base), label
                for name in state_base:
                    assert np.array_equal(state[name], state_base[name]), (label, name)
                assert (
                    ctx.profiler.iteration_seconds()
                    == ctx_base.profiler.iteration_seconds()
                ), label
                assert (
                    ctx.legion.simulated_seconds == ctx_base.legion.simulated_seconds
                ), label
                if wide and workers > 1:
                    # The captured plans really are wide — the width
                    # histogram is deterministic across hosts.
                    assert ctx.profiler.plan_width_max >= 2, label
                    assert max(ctx.profiler.plan_level_widths) >= 2, label
                if wide and backend == "process" and workers > 1 and point_workers > 1:
                    # Wide-level chunks actually shipped to the
                    # process pool (the lifted guard at work).
                    assert ctx.profiler.opaque_process_chunks > 0, label
                    assert ctx.profiler.point_process_chunks > 0, label
        shutdown_process_pool()


# ----------------------------------------------------------------------
# Guard lift: pool workers chunk for the process substrate only.
# ----------------------------------------------------------------------
class TestGuardLift:
    def test_pool_worker_chunks_under_process_backend(self, monkeypatch):
        """The counterpart to the thread-substrate suppression test.

        ``point_chunk_plan`` on a pool worker thread must chunk under
        the process backend (process chunks queue on worker pipes, so
        they cannot deadlock the thread pool) while staying serial
        under the thread backend (the original deadlock guard; see
        tests/test_point_dispatch.py).
        """
        from repro.runtime.executor import TaskExecutor
        from repro.runtime.machine import MachineConfig
        from repro.runtime.pool import submit_guarded, worker_pool
        from repro.runtime.region import RegionManager

        monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        config.reload_flags()
        executor = TaskExecutor(RegionManager(), MachineConfig(num_gpus=4))
        # Caller thread chunks, as always...
        assert len(executor.point_chunk_plan(8, ())) == 4
        # ...and with the guard lifted, so does a pool worker.
        future = submit_guarded(
            worker_pool(4), lambda: executor.point_chunk_plan(8, ())
        )
        assert len(future.result()) == 4

        # Flipping back to the thread backend restores the guard.
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "thread")
        config.reload_flags()
        future = submit_guarded(
            worker_pool(4), lambda: executor.point_chunk_plan(8, ())
        )
        assert future.result() == [(0, 8)]

    def test_pool_worker_dispatches_chunks_serially_inline(self, monkeypatch):
        """A degraded launch on a pool worker runs its chunks inline.

        When a launch chunked for the process substrate but the chunks
        then fall back to threads, ``_dispatch_chunks`` must not
        re-enter the thread pool from one of its own workers.
        """
        from repro.runtime.executor import TaskExecutor
        from repro.runtime.machine import MachineConfig
        from repro.runtime.pool import submit_guarded, worker_pool
        from repro.runtime.region import RegionManager

        monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        config.reload_flags()
        executor = TaskExecutor(RegionManager(), MachineConfig(num_gpus=4))

        import threading

        seen_threads = []

        def run(start, stop):
            seen_threads.append(threading.current_thread())
            return (start, stop)

        chunks = [(0, 2), (2, 4), (4, 6), (6, 8)]
        future = submit_guarded(
            worker_pool(4), lambda: executor._dispatch_chunks(chunks, run)
        )
        assert future.result() == chunks
        # All chunks ran on the submitting pool worker itself.
        assert len(set(seen_threads)) == 1


# ----------------------------------------------------------------------
# Worker death mid-run: degrade, never diverge.
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_killed_worker_mid_run_degrades_bit_identically(self, monkeypatch):
        """Tear a pool worker out from under a wide app mid-run.

        The next dispatch that touches the dead worker surfaces
        :class:`ProcessPoolBrokenError` internally; the executor and
        scheduler degrade that launch, the broken pool marks itself
        closed, :func:`process_pool` rebuilds a fresh one for the
        launches after it, and the final state must still match the
        undisturbed thread baseline bit for bit.
        """
        import repro.runtime.procpool as procpool

        app_name, kwargs, iterations = "torchswe-manual", dict(points_per_gpu=16), 6

        _, state_base, checksum_base = _run_app(
            app_name, "thread", 1, 1, monkeypatch, iterations, **kwargs
        )

        _set_flags(monkeypatch, "process", 4, 4)
        context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
        set_context(context)
        try:
            app = build_application(app_name, context=context, **kwargs)
            app.run(3)
            # The pool exists and has been fed; now kill a worker.
            pool = procpool.process_pool()
            chunks_before = context.profiler.point_process_chunks
            assert chunks_before > 0
            pool._processes[0].terminate()
            pool._processes[0].join(timeout=5.0)
            # The rest of the run must complete — the launch that hits
            # the dead worker degrades, the pool rebuilds behind it.
            app.run(iterations - 3)
            assert pool.closed
            assert procpool.process_pool() is not pool
            assert context.profiler.point_process_chunks > chunks_before
            checksum = app.checksum()
            state = {
                name: value.to_numpy()
                for name, value in vars(app).items()
                if isinstance(value, cn_ndarray)
            }
        finally:
            set_context(None)
        assert checksum == checksum_base
        for name in state_base:
            assert np.array_equal(state[name], state_base[name]), name
        shutdown_process_pool()
