"""Trace capture/replay correctness and the deferred task stream.

The acceptance bar for the trace subsystem: with the differential kernel
backend, running each harness application with ``REPRO_TRACE=1`` must
produce *bitwise-identical* application state and *identical* simulated
seconds for every replayed iteration compared to ``REPRO_TRACE=0``, and
the profiler must report trace hits for every iterative app.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.fusion.engine import DiffuseRuntime, FusionConfig
from repro.ir.domain import Domain
from repro.ir.partition import natural_tiling
from repro.ir.privilege import Privilege
from repro.ir.store import StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.machine import MachineConfig
from repro.runtime.runtime import LegionRuntime


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


def _run_app(app_name: str, trace: str, monkeypatch, iterations: int, **app_kwargs):
    """Run an application end to end; returns (context, state arrays, checksum)."""
    monkeypatch.setenv("REPRO_TRACE", trace)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    config.reload_flags()
    context = RuntimeContext(
        num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4)
    )
    set_context(context)
    try:
        app = build_application(app_name, context=context, **app_kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


class TestTraceReplayDifferential:
    """Satellite: replayed epochs are bit-identical and time-identical."""

    APPS = [
        ("cg", dict(grid_points_per_gpu=16), 8),
        ("jacobi", dict(rows_per_gpu=48), 8),
        ("black-scholes", dict(elements_per_gpu=256), 10),
    ]

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_replay_bitwise_identical(self, app_name, kwargs, iterations, monkeypatch):
        ctx_off, state_off, checksum_off = _run_app(
            app_name, "0", monkeypatch, iterations, **kwargs
        )
        ctx_on, state_on, checksum_on = _run_app(
            app_name, "1", monkeypatch, iterations, **kwargs
        )

        # The trace mode actually replayed epochs (and the differential
        # executor checked every replayed kernel invocation bit-for-bit).
        assert ctx_off.profiler.trace_hits == 0
        assert ctx_on.profiler.trace_hits > 0
        assert any(r.replayed for r in ctx_on.profiler.records)

        # Bitwise-identical application state and checksums.
        assert checksum_on == checksum_off
        assert set(state_on) == set(state_off)
        for name in state_off:
            assert np.array_equal(state_on[name], state_off[name]), name

        # Identical simulated seconds for every replayed iteration.
        first_replayed = min(
            r.iteration for r in ctx_on.profiler.records if r.replayed
        )
        seconds_off = ctx_off.profiler.iteration_seconds()
        seconds_on = ctx_on.profiler.iteration_seconds()
        assert len(seconds_off) == len(seconds_on) == iterations
        assert seconds_on[first_replayed:] == seconds_off[first_replayed:]

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_replay_total_simulated_seconds_match_steady_state(
        self, app_name, kwargs, iterations, monkeypatch
    ):
        """Replayed iterations repeat the steady-state cost exactly."""
        ctx_on, _, _ = _run_app(app_name, "1", monkeypatch, iterations, **kwargs)
        records = ctx_on.profiler.records
        replayed_iters = sorted({r.iteration for r in records if r.replayed})
        assert replayed_iters, "no replayed iterations"
        seconds = ctx_on.profiler.iteration_seconds()
        # Every fully-replayed iteration costs exactly the same.
        fully_replayed = [
            i
            for i in replayed_iters
            if all(r.replayed for r in records if r.iteration == i)
        ]
        assert len(fully_replayed) >= 2
        assert len({seconds[i] for i in fully_replayed}) == 1


class TestTraceController:
    """Unit-level behaviour of the deferred stream and plan cache."""

    def _context(self):
        context = RuntimeContext(num_gpus=4, fusion=True)
        set_context(context)
        return context

    def test_trace_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        config.reload_flags()
        engine = DiffuseRuntime(runtime=LegionRuntime(MachineConfig(num_gpus=2)))
        assert engine.trace is None

    def test_trace_requires_fusion_and_memoization(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        config.reload_flags()
        runtime = LegionRuntime(MachineConfig(num_gpus=2))
        assert DiffuseRuntime(runtime=runtime).trace is not None
        assert (
            DiffuseRuntime(
                runtime=LegionRuntime(MachineConfig(num_gpus=2)),
                config=FusionConfig(enable_fusion=False),
            ).trace
            is None
        )
        assert (
            DiffuseRuntime(
                runtime=LegionRuntime(MachineConfig(num_gpus=2)),
                config=FusionConfig(enable_memoization=False),
            ).trace
            is None
        )
        assert (
            DiffuseRuntime(
                runtime=LegionRuntime(MachineConfig(num_gpus=2)),
                config=FusionConfig(enable_tracing=False),
            ).trace
            is None
        )

    def _chain_epoch(self, manager, launch, inputs, scalar):
        """An epoch of two chained element-wise tasks with a scalar arg."""
        a, b = inputs
        t = manager.create_store((16,), name="t")
        out = manager.create_store((16,), name="out")
        # The application holds a handle to the result (like a frontend
        # ndarray would); the intermediate ``t`` is a true temporary.
        out.add_application_reference()
        part = natural_tiling((16,), launch)
        tasks = [
            IndexTask(
                "multiply_scalar",
                launch,
                [
                    StoreArg(a, part, Privilege.READ),
                    StoreArg(t, part, Privilege.WRITE),
                ],
                scalar_args=(scalar,),
            ),
            IndexTask(
                "add",
                launch,
                [
                    StoreArg(t, part, Privilege.READ),
                    StoreArg(b, part, Privilege.READ),
                    StoreArg(out, part, Privilege.WRITE),
                ],
            ),
        ]
        return tasks, out

    def test_scalars_rebound_on_replay(self, monkeypatch):
        """Replayed epochs pick up the current iteration's scalar values."""
        monkeypatch.setenv("REPRO_TRACE", "1")
        config.reload_flags()
        manager = StoreManager()
        launch = Domain((4,))
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        engine = DiffuseRuntime(runtime=runtime)
        assert engine.trace is not None

        a_data = np.arange(16, dtype=np.float64)
        b_data = np.ones(16)
        a = manager.create_store((16,), name="a")
        b = manager.create_store((16,), name="b")
        runtime.attach_array(a, a_data)
        runtime.attach_array(b, b_data)

        outs = []
        scalars = [2.0, 3.0, 5.0, 7.0]
        for scalar in scalars:
            tasks, out = self._chain_epoch(manager, launch, (a, b), scalar)
            for task in tasks:
                engine.submit(task)
            engine.flush_window()
            outs.append((scalar, out))

        profiler = runtime.profiler
        assert profiler.trace_hits >= 2  # epochs 3+ replay the captured plan
        for scalar, out in outs:
            np.testing.assert_array_equal(
                runtime.read_array(out), a_data * scalar + b_data
            )

    def test_changed_entry_coherence_misses(self, monkeypatch):
        """A different entry layout must not replay a stale plan."""
        monkeypatch.setenv("REPRO_TRACE", "1")
        config.reload_flags()
        manager = StoreManager()
        launch = Domain((4,))
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        engine = DiffuseRuntime(runtime=runtime)

        a = manager.create_store((16,), name="a")
        b = manager.create_store((16,), name="b")
        runtime.attach_array(a, np.arange(16, dtype=np.float64))
        runtime.attach_array(b, np.ones(16))

        for _ in range(4):
            tasks, _ = self._chain_epoch(manager, launch, (a, b), 2.0)
            for task in tasks:
                engine.submit(task)
            engine.flush_window()
        hits = runtime.profiler.trace_hits
        assert hits >= 1

        # Host write invalidates a's layout: the next epoch enters with a
        # different coherence state and must be re-recorded, not replayed.
        runtime.attach_array(a, np.arange(16, dtype=np.float64) * 10.0)
        misses_before = runtime.profiler.trace_misses
        tasks, out = self._chain_epoch(manager, launch, (a, b), 2.0)
        for task in tasks:
            engine.submit(task)
        engine.flush_window()
        # The stream is isomorphic, but attach_array resets the
        # coherence state, which is part of the trace key; whether this
        # particular transition changes the key depends on the prior
        # layout — the correctness requirement is just that the result
        # is right.
        np.testing.assert_array_equal(
            runtime.read_array(out), np.arange(16) * 10.0 * 2.0 + 1.0
        )
        assert runtime.profiler.trace_misses >= misses_before

    def test_pending_stream_references_keep_stores_live(self, monkeypatch):
        """Buffered tasks hold liveness references on their stores."""
        monkeypatch.setenv("REPRO_TRACE", "1")
        config.reload_flags()
        manager = StoreManager()
        launch = Domain((4,))
        engine = DiffuseRuntime(runtime=LegionRuntime(MachineConfig(num_gpus=4)))
        a = manager.create_store((16,), name="a")
        out = manager.create_store((16,), name="out")
        part = natural_tiling((16,), launch)
        task = IndexTask(
            "copy",
            launch,
            [StoreArg(a, part, Privilege.READ), StoreArg(out, part, Privilege.WRITE)],
        )
        assert not a.has_live_application_references
        engine.submit(task)
        assert a.has_live_application_references  # pending stream ref
        engine.flush_window()
        assert not a.has_live_application_references

    def test_epoch_limit_forces_boundary(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        config.reload_flags()
        import repro.runtime.trace as trace_mod

        monkeypatch.setattr(trace_mod, "EPOCH_TASK_LIMIT", 4)
        manager = StoreManager()
        launch = Domain((4,))
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        engine = DiffuseRuntime(runtime=runtime)
        a = manager.create_store((16,), name="a")
        runtime.attach_array(a, np.ones(16))
        part = natural_tiling((16,), launch)
        for _ in range(5):
            out = manager.create_store((16,), name="o")
            engine.submit(
                IndexTask(
                    "copy",
                    launch,
                    [
                        StoreArg(a, part, Privilege.READ),
                        StoreArg(out, part, Privilege.WRITE),
                    ],
                )
            )
        # The 4-task limit forced one mid-stream boundary.
        assert engine.trace.pending == 1
        assert runtime.profiler.total_index_tasks >= 1
        engine.flush_window()
        assert engine.trace.pending == 0


class TestWindowSizeFingerprint:
    """Regression: plans captured while the adaptive window was still
    growing must be re-captured once it has grown, instead of replaying
    the stale (smaller-window, more-launches) plan forever."""

    def _submit_chain(self, engine, manager, launch, part, src, length, scalar):
        tasks = []
        current = src
        for index in range(length):
            nxt = manager.create_store((16,), name=f"chain{index}")
            tasks.append(
                IndexTask(
                    "multiply_scalar",
                    launch,
                    [
                        StoreArg(current, part, Privilege.READ),
                        StoreArg(nxt, part, Privilege.WRITE),
                    ],
                    scalar_args=(scalar,),
                )
            )
            current = nxt
        current.add_application_reference()
        for task in tasks:
            engine.submit(task)
        engine.flush_window()
        return current

    def _run(self, trace, monkeypatch, epochs=14):
        monkeypatch.setenv("REPRO_TRACE", trace)
        config.reload_flags()
        manager = StoreManager()
        launch = Domain((4,))
        part = natural_tiling((16,), launch)
        runtime = LegionRuntime(MachineConfig(num_gpus=4))
        engine = DiffuseRuntime(
            runtime=runtime,
            config=FusionConfig(initial_window_size=4, max_window_size=64),
        )
        src = manager.create_store((16,), name="src")
        src.add_application_reference()
        runtime.attach_array(src, np.ones(16))

        long_epoch_launches = []
        last = None
        for _ in range(epochs):
            runtime.profiler.begin_iteration()
            # A short fusible epoch grows the window on memoization hits...
            self._submit_chain(engine, manager, launch, part, src, 4, 1.01)
            # ...so the long fusible chain can be captured mid-growth.
            before = runtime.profiler.total_index_tasks
            last = self._submit_chain(engine, manager, launch, part, src, 20, 1.02)
            long_epoch_launches.append(runtime.profiler.total_index_tasks - before)
        return engine, runtime, long_epoch_launches, runtime.read_array(last)

    def test_long_chain_recaptures_after_window_growth(self, monkeypatch):
        engine, runtime, launches, data = self._run("1", monkeypatch)
        # Early epochs run (and may be captured) with a window still too
        # small for the whole chain; once the window has grown, the
        # fingerprinted key forces a re-capture of the optimal plan.
        assert launches[0] > 1
        assert launches[-1] == 1
        assert runtime.profiler.trace_hits > 0
        # At least two distinct plans were captured for the same stream.
        assert engine.trace.captured_plans >= 2

        # Steady state matches the eager pipeline's launch count and bits.
        _, _, eager_launches, eager_data = self._run("0", monkeypatch)
        assert launches[-1] == eager_launches[-1]
        np.testing.assert_array_equal(data, eager_data)


class TestFusionConfigCopied:
    """Regression: RuntimeContext must not mutate the caller's config."""

    def test_caller_config_not_mutated(self):
        shared = FusionConfig(enable_fusion=True)
        context = RuntimeContext(num_gpus=2, fusion=False, fusion_config=shared)
        assert shared.enable_fusion is True
        assert context.diffuse.config.enable_fusion is False

    def test_contexts_do_not_alias_config(self):
        shared = FusionConfig()
        fused = RuntimeContext(num_gpus=2, fusion=True, fusion_config=shared)
        unfused = RuntimeContext(num_gpus=2, fusion=False, fusion_config=shared)
        assert fused.diffuse.config.enable_fusion is True
        assert unfused.diffuse.config.enable_fusion is False
        assert fused.diffuse.config is not unfused.diffuse.config
        # And the second context's construction did not flip the first's.
        fused.diffuse.config.initial_window_size = 99
        assert shared.initial_window_size != 99


class TestProfilerTraceCounters:
    def test_counters_and_reset(self):
        from repro.runtime.profiler import Profiler

        profiler = Profiler()
        assert profiler.trace_hit_rate == 0.0
        profiler.record_trace_miss()
        profiler.record_trace_hit(5)
        profiler.record_trace_hit(7)
        assert profiler.trace_hits == 2
        assert profiler.trace_misses == 1
        assert profiler.trace_replayed_tasks == 12
        assert profiler.trace_hit_rate == pytest.approx(2 / 3)
        profiler.reset()
        assert profiler.trace_hits == 0
        assert profiler.trace_misses == 0
        assert profiler.trace_replayed_tasks == 0

    def test_records_carry_replayed_flag(self):
        from repro.runtime.profiler import Profiler

        profiler = Profiler()
        record = profiler.record_task(
            name="t",
            constituents=1,
            kernel_seconds=1.0,
            communication_seconds=0.0,
            overhead_seconds=0.0,
            launches=1,
            fused=False,
            replayed=True,
        )
        assert record.replayed is True
        assert profiler.records[0].replayed is True


class TestScalarPatternFlips:
    """Satellite: count re-records forced by scalar-pattern flips."""

    def test_flip_on_known_structure_is_counted(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
        config.reload_flags()
        context = RuntimeContext(
            num_gpus=2, fusion=True, machine=scaled_machine(2, 1e-4)
        )
        set_context(context)
        try:
            import repro.frontend.cunumeric as cn

            x = cn.array(np.linspace(1.0, 2.0, 64), name="flip_x")

            def epoch(a, b):
                return (x * a + b).to_numpy()

            expected = lambda a, b: np.linspace(1.0, 2.0, 64) * a + b

            for _ in range(3):
                np.testing.assert_array_equal(epoch(2.0, 3.0), expected(2.0, 3.0))
            profiler = context.profiler
            assert profiler.scalar_pattern_flips == 0

            # ``b`` collides with ``a`` for one epoch: same stream
            # structure, different scalar equality pattern -> a miss
            # that is a flip, not a new stream.
            np.testing.assert_array_equal(epoch(2.0, 2.0), expected(2.0, 2.0))
            assert profiler.scalar_pattern_flips == 1

            # Back to the distinct-valued pattern: the originally
            # captured plan replays (values rebind), no new flip.
            hits_before = profiler.trace_hits
            np.testing.assert_array_equal(epoch(2.0, 5.0), expected(2.0, 5.0))
            assert profiler.scalar_pattern_flips == 1
            assert profiler.trace_hits == hits_before + 1
        finally:
            set_context(None)

    def test_distinct_structures_do_not_count_as_flips(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
        config.reload_flags()
        context = RuntimeContext(
            num_gpus=2, fusion=True, machine=scaled_machine(2, 1e-4)
        )
        set_context(context)
        try:
            import repro.frontend.cunumeric as cn

            x = cn.array(np.linspace(0.5, 1.5, 64), name="nflip_x")
            (x * 2.0 + 3.0).to_numpy()          # structure A
            ((x + 1.0) * 4.0 - 2.0).to_numpy()  # structure B: new stream
            assert context.profiler.scalar_pattern_flips == 0
        finally:
            set_context(None)

    def test_counter_resets(self):
        from repro.runtime.profiler import Profiler

        profiler = Profiler()
        profiler.record_scalar_pattern_flip()
        assert profiler.scalar_pattern_flips == 1
        profiler.reset()
        assert profiler.scalar_pattern_flips == 0
