"""Plan-resident process replay (``REPRO_RESIDENT_PLANS``).

Acceptance bar: with plans resident in the worker processes the replay
stays bit-identical to the thread backend — buffers, checksums AND
simulated seconds — across ``REPRO_RESIDENT_PLANS`` {0,1} ×
``REPRO_SUPERKERNEL`` {0,1} × ``REPRO_WORKERS`` {1,4} ×
``REPRO_POINT_WORKERS`` {1,4}, asserted under the differential kernel
backend with the dispatch thresholds forced to zero.  Alongside the
hammer, this file covers the staleness story (descriptor swaps through
``RegionManager.attach``/``release`` and ``config.reload_flags()``
retire resident plans) and the broken-pool degrade path (a killed
worker falls back to the per-chunk protocol, then re-ships the plan to
the fresh pool), plus the wire-traffic counters the residency exists
to shrink.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.runtime import procpool
from repro.runtime.procpool import shutdown_process_pool


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    """Zero both dispatch thresholds so tiny launches hit the pools."""
    import repro.runtime.executor as executor_module
    import repro.runtime.scheduler as scheduler_module

    monkeypatch.setattr(executor_module, "MIN_POINT_DISPATCH_VOLUME", 0)
    monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)


# ----------------------------------------------------------------------
# Configuration.
# ----------------------------------------------------------------------
class TestResidentConfig:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESIDENT_PLANS", raising=False)
        config.reload_flags()
        assert config.resident_plans_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "OFF"])
    def test_disabled_spellings(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_RESIDENT_PLANS", value)
        config.reload_flags()
        assert not config.resident_plans_enabled()

    def test_junk_means_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESIDENT_PLANS", "sure")
        config.reload_flags()
        assert config.resident_plans_enabled()


# ----------------------------------------------------------------------
# Staleness: descriptor swaps and flag reloads retire resident plans.
# ----------------------------------------------------------------------
class TestResidentInvalidation:
    def test_plan_ids_never_repeat(self):
        first = procpool.next_resident_plan_id()
        second = procpool.next_resident_plan_id()
        assert second > first

    def test_reload_flags_bumps_generation(self):
        before = procpool.resident_generation()
        config.reload_flags()
        assert procpool.resident_generation() > before

    def test_attach_swap_bumps_generation(self, monkeypatch):
        """Re-binding a store to fresh data retires resident plans.

        The swapped-out field's arena block is freed and may be recycled
        at the same offset for an unrelated field — any worker-resident
        descriptor pointing at it is stale the moment ``attach`` returns.
        """
        from repro.ir.store import StoreManager
        from repro.runtime.region import RegionManager

        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        config.reload_flags()
        manager = RegionManager()
        store = StoreManager().create_store((32,), name="field")
        field = manager.field(store)
        assert field.shm_descriptor is not None
        before = procpool.resident_generation()
        manager.attach(store, np.arange(32.0))
        assert procpool.resident_generation() > before
        released_at = procpool.resident_generation()
        manager.release(store)
        assert procpool.resident_generation() > released_at
        manager.close_arena()

    def test_thread_backend_attach_does_not_bump(self, monkeypatch):
        from repro.ir.store import StoreManager
        from repro.runtime.region import RegionManager

        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "thread")
        config.reload_flags()
        manager = RegionManager()
        store = StoreManager().create_store((32,), name="field")
        manager.field(store)
        before = procpool.resident_generation()
        manager.attach(store, np.arange(32.0))
        manager.release(store)
        assert procpool.resident_generation() == before

    def test_retire_resident_plan_clears_cache(self):
        class PlanStub:
            resident = "sentinel"

        plan = PlanStub()
        procpool.retire_resident_plan(plan)
        assert plan.resident is None
        # Idempotent, and tolerant of plans never registered.
        procpool.retire_resident_plan(plan)
        procpool.retire_resident_plan(object())


# ----------------------------------------------------------------------
# End-to-end parity: the resident differential hammer (tentpole).
# ----------------------------------------------------------------------
COMBOS = [(1, 1), (4, 1), (1, 4), (4, 4)]

APPS = [
    ("cg", dict(grid_points_per_gpu=12), 5),
    ("jacobi", dict(rows_per_gpu=32), 6),
    ("black-scholes", dict(elements_per_gpu=128), 6),
    ("two-matvec", dict(rows_per_gpu=24), 6),
]


def _run_app(
    app_name,
    backend,
    point_workers,
    workers,
    monkeypatch,
    iterations,
    resident="1",
    superkernel="0",
    **kwargs,
):
    monkeypatch.setenv("REPRO_DISPATCH_BACKEND", backend)
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    monkeypatch.setenv("REPRO_RESIDENT_PLANS", resident)
    monkeypatch.setenv("REPRO_SUPERKERNEL", superkernel)
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application(app_name, context=context, **kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


def _assert_matches(ctx, state, checksum, baseline, label):
    ctx_base, state_base, checksum_base = baseline
    assert checksum == checksum_base, label
    assert set(state) == set(state_base), label
    for name in state_base:
        assert np.array_equal(state[name], state_base[name]), (label, name)
    assert ctx.profiler.iteration_seconds() == ctx_base.profiler.iteration_seconds(), label
    assert ctx.legion.simulated_seconds == ctx_base.legion.simulated_seconds, label


class TestResidentParity:
    """The resident × super-kernel × workers × point-workers hammer.

    CG (compiled kernels with reductions), Jacobi (opaque GEMV that
    stays on the thread substrate), Black-Scholes (elementwise chains)
    and two-matvec (width-2 plan levels) must all be bit-identical —
    buffers, checksums and simulated seconds — to the thread/1/1
    baseline for every flag combination, with both kernel backends
    cross-checked inside the workers by the differential executor.
    """

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_matrix_bit_identical(self, app_name, kwargs, iterations, monkeypatch):
        baseline = _run_app(
            app_name, "thread", 1, 1, monkeypatch, iterations, resident="0", **kwargs
        )
        for resident in ("0", "1"):
            for superkernel in ("0", "1"):
                for point_workers, workers in COMBOS:
                    ctx, state, checksum = _run_app(
                        app_name,
                        "process",
                        point_workers,
                        workers,
                        monkeypatch,
                        iterations,
                        resident=resident,
                        superkernel=superkernel,
                        **kwargs,
                    )
                    label = (
                        f"resident={resident} superkernel={superkernel} "
                        f"point={point_workers} workers={workers}"
                    )
                    _assert_matches(ctx, state, checksum, baseline, label)
                    if point_workers > 1 and app_name != "jacobi":
                        assert ctx.profiler.point_process_chunks > 0, label
                        assert ctx.profiler.wire_bytes > 0, label
                        assert ctx.profiler.wire_requests > 0, label
        shutdown_process_pool()

    def test_resident_shrinks_steady_state_wire_bytes(self, monkeypatch):
        """The counters the residency exists to move.

        Same replay, same ranks: shipping the plan once and referencing
        it by id must put fewer bytes on the worker pipes than
        re-sending every chunk's geometry and descriptors each epoch.
        The counters are deterministic (sizes of actual pickled
        payloads), so this holds on any host.
        """
        iterations = 12
        chunked = _run_app(
            "cg", "process", 4, 1, monkeypatch, iterations,
            resident="0", grid_points_per_gpu=12,
        )[0]
        shutdown_process_pool()
        resident = _run_app(
            "cg", "process", 4, 1, monkeypatch, iterations,
            resident="1", grid_points_per_gpu=12,
        )[0]
        shutdown_process_pool()
        assert resident.profiler.wire_bytes > 0
        assert resident.profiler.wire_bytes < chunked.profiler.wire_bytes
        assert (
            resident.profiler.wire_bytes_per_epoch
            < chunked.profiler.wire_bytes_per_epoch
        )


# ----------------------------------------------------------------------
# Staleness and degradation, end to end.
# ----------------------------------------------------------------------
class TestResidentRecovery:
    def _start_app(self, monkeypatch, app_name="cg", **kwargs):
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
        monkeypatch.setenv("REPRO_RESIDENT_PLANS", "1")
        config.reload_flags()
        context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
        set_context(context)
        return context, build_application(app_name, context=context, **kwargs)

    def _baseline(self, monkeypatch, iterations):
        _ctx, state, checksum = _run_app(
            "cg", "thread", 1, 1, monkeypatch, iterations,
            resident="0", grid_points_per_gpu=12,
        )
        return state, checksum

    def test_reload_flags_mid_run_reships_under_fresh_id(self, monkeypatch):
        """``reload_flags`` retires resident plans; replay recovers.

        After the reload the captured plan must be re-registered under a
        *new* plan id (ids are never reused) and the run must stay
        bit-identical to an uninterrupted thread-backend run.
        """
        state_base, checksum_base = self._baseline(monkeypatch, 6)
        context, app = self._start_app(monkeypatch, grid_points_per_gpu=12)
        try:
            app.run(3)
            generation = procpool.resident_generation()
            config.reload_flags()
            assert procpool.resident_generation() > generation
            app.run(3)
            assert app.checksum() == checksum_base
            for name, value in vars(app).items():
                if isinstance(value, cn_ndarray):
                    assert np.array_equal(value.to_numpy(), state_base[name]), name
        finally:
            set_context(None)
        shutdown_process_pool()

    def test_killed_worker_degrades_then_reships(self, monkeypatch):
        """A dead worker must not wedge or corrupt resident replay.

        The dispatch that hits the broken pipe degrades to the thread
        substrate for that launch, the pool singleton is rebuilt, and
        the plan re-ships to the fresh workers — with the final state
        still bit-identical to the thread backend.
        """
        state_base, checksum_base = self._baseline(monkeypatch, 6)
        context, app = self._start_app(monkeypatch, grid_points_per_gpu=12)
        try:
            app.run(3)
            pool = procpool.process_pool()
            assert any(shipped for shipped in pool._plans_shipped)
            for process in pool._processes:
                process.terminate()
                process.join(timeout=5.0)
            app.run(3)
            assert pool.closed
            fresh = procpool.process_pool()
            assert fresh is not pool
            assert app.checksum() == checksum_base
            for name, value in vars(app).items():
                if isinstance(value, cn_ndarray):
                    assert np.array_equal(value.to_numpy(), state_base[name]), name
        finally:
            set_context(None)
        shutdown_process_pool()

    def test_descriptor_swap_mid_run_stays_identical(self, monkeypatch):
        """Arena blocks moving between epochs must never be served stale.

        Allocating an unrelated field mid-run perturbs the arena's
        first-fit layout, so the app's next epoch binds its slots at
        *different* offsets than the templates were shipped with.  The
        per-dispatch descriptor sync must deliver the new addresses to
        the workers (this exact scenario produced silent zeros before
        the sync existed).
        """
        from repro.ir.store import StoreManager

        state_base, checksum_base = self._baseline(monkeypatch, 6)
        context, app = self._start_app(monkeypatch, grid_points_per_gpu=12)
        try:
            app.run(3)
            # Pin a wedge block in the arena so freed blocks stop
            # recycling to their old offsets.
            wedge_store = StoreManager().create_store((64,), name="wedge")
            wedge = context.legion.regions.field(wedge_store)
            assert wedge.shm_descriptor is not None
            app.run(3)
            assert app.checksum() == checksum_base
            for name, value in vars(app).items():
                if isinstance(value, cn_ndarray):
                    assert np.array_equal(value.to_numpy(), state_base[name]), name
        finally:
            set_context(None)
        shutdown_process_pool()
