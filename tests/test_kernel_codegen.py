"""Tests of the codegen JIT backend (interpreter/codegen differential).

The codegen backend must be observationally *identical* to the
tree-walking interpreter: every registered generator kernel, and the
fused kernels produced by real application windows, must write the same
bits to every buffer and produce the same reduction partials.  These
tests also pin the compile-once contract: a canonical kernel key invokes
the builtin ``compile`` at most once per process, and memoization-hit
rounds never re-enter ``JITCompiler.compile``.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro import config
from repro.experiments.harness import ExperimentScale, run_application_experiment
from repro.kernel.builder import KernelBuilder
from repro.kernel.codegen import (
    CodegenError,
    CodegenExecutor,
    codegen_stats,
    generate_source,
)
from repro.kernel.generators import default_registry
from repro.kernel.kir import (
    Alloc,
    Assign,
    Function,
    Load,
    Loop,
    Param,
    Reduce,
    ReduceKind,
)
from repro.kernel.lowering import (
    BackendDivergenceError,
    DifferentialExecutor,
    InterpreterExecutor,
    lower,
)
from repro.kernel.passes.compose import KernelBinding
from repro.kernel.passes.pipeline import default_pipeline


def _reduce_only_targets(function: Function):
    """Buffers only ever written by Reduce statements (passed as None)."""
    reduced = set()
    assigned = set()
    loaded = function.buffers_read()
    for loop in function.loops:
        for stmt in loop.body:
            if hasattr(stmt, "kind"):
                reduced.add(stmt.target)
            elif not getattr(stmt, "is_local", False):
                assigned.add(stmt.target)
    return reduced - assigned - loaded


def _make_buffers(function: Function, rng: np.random.Generator, size: int = 16):
    """Random, well-conditioned inputs for every buffer parameter."""
    reduce_only = _reduce_only_targets(function)
    buffers = {}
    for param in function.buffer_params:
        if param.name in reduce_only:
            buffers[param.name] = None
        else:
            buffers[param.name] = rng.uniform(0.5, 2.0, size=size)
    scalars = {param.name: float(rng.uniform(0.5, 2.0)) for param in function.scalar_params}
    return buffers, scalars


def _run_both(function: Function, buffers, scalars):
    """Run interpreter and codegen on identical inputs; return outputs."""
    results = []
    for backend in ("interpreter", "codegen"):
        local = {
            name: None if array is None else array.copy()
            for name, array in buffers.items()
        }
        executor = lower(function, KernelBinding(), backend=backend)
        partials = executor(local, dict(scalars))
        results.append((local, partials))
    return results


def _assert_identical(function: Function, buffers, scalars):
    (int_buffers, int_partials), (cg_buffers, cg_partials) = _run_both(
        function, buffers, scalars
    )
    for name in buffers:
        if int_buffers[name] is None:
            assert cg_buffers[name] is None
            continue
        np.testing.assert_array_equal(
            int_buffers[name],
            cg_buffers[name],
            err_msg=f"kernel '{function.name}' buffer '{name}' diverged",
        )
    assert set(int_partials) == set(cg_partials)
    for target, partial in int_partials.items():
        other = cg_partials[target]
        assert partial.kind is other.kind
        assert partial.value == other.value or (
            np.isnan(partial.value) and np.isnan(other.value)
        ), f"kernel '{function.name}' partial '{target}' diverged"


class TestRegistryDifferential:
    """Every registered generator kernel is bit-identical across backends."""

    @pytest.mark.parametrize("task_name", default_registry().registered_names())
    def test_generator_kernel_bit_identical(self, task_name):
        registry = default_registry()
        function = registry.generate(SimpleNamespace(task_name=task_name))
        assert function is not None
        rng = np.random.default_rng(hash(task_name) % (2**32))
        buffers, scalars = _make_buffers(function, rng)
        _assert_identical(function, buffers, scalars)

    @pytest.mark.parametrize("task_name", default_registry().registered_names())
    def test_optimised_kernel_bit_identical(self, task_name):
        """The pass pipeline's output also matches across backends."""
        registry = default_registry()
        function = registry.generate(SimpleNamespace(task_name=task_name))
        optimised = default_pipeline().run(function, KernelBinding())
        rng = np.random.default_rng(hash(task_name) % (2**32) + 1)
        buffers, scalars = _make_buffers(optimised, rng)
        _assert_identical(optimised, buffers, scalars)


class TestFusedKernelDifferential:
    """Hand-built fused kernels with locals, allocs and repeated reduces."""

    def test_fused_kernel_with_alloc_and_locals(self):
        builder = KernelBuilder("fused")
        builder.buffers("x", "y", "out", "acc")
        alpha = builder.scalar("s0")
        builder.loop("out")
        local = builder.let("t", KernelBuilder.mul(alpha, "x"))
        builder.assign("out", KernelBuilder.add(local, "y"))
        builder.reduce("acc", KernelBuilder.mul("out", "out"), ReduceKind.SUM)
        builder.end_loop()
        function = builder.build()
        # Prepend a task-local allocation referencing a real buffer.
        function = function.with_body(
            (Alloc(name="tmp", like="x"),)
            + tuple(function.body[:-1])
            + (
                Loop(
                    index_buffer="x",
                    body=(Assign(target="tmp", expr=Load("x")),),
                ),
            )
            + function.body[-1:]
        )
        rng = np.random.default_rng(7)
        buffers, scalars = _make_buffers(function, rng)
        _assert_identical(function, buffers, scalars)

    def test_repeated_reduction_targets_combine(self):
        builder = KernelBuilder("multi_reduce")
        builder.buffers("x", "acc")
        builder.loop("x")
        builder.reduce("acc", "x", ReduceKind.SUM)
        builder.reduce("acc", KernelBuilder.mul("x", "x"), ReduceKind.SUM)
        builder.end_loop()
        function = builder.build()
        rng = np.random.default_rng(11)
        buffers, scalars = _make_buffers(function, rng)
        _assert_identical(function, buffers, scalars)

    def test_scalar_reduction_broadcasts_over_index_space(self):
        builder = KernelBuilder("count")
        builder.buffers("x", "acc")
        builder.loop("x")
        builder.reduce("acc", 1.0, ReduceKind.SUM)
        builder.end_loop()
        function = builder.build()
        buffers = {"x": np.zeros(9), "acc": None}
        _assert_identical(function, buffers, {})
        executor = lower(function, KernelBinding(), backend="codegen")
        partials = executor({"x": np.zeros(9), "acc": None}, {})
        assert partials["acc"].value == 9.0

    def test_rank0_buffer_reduce_broadcasts_like_interpreter(self):
        """A load from a runtime-0-d buffer broadcasts over the index space."""
        function = Function(
            name="edge",
            params=(Param.buffer("x"), Param.buffer("s"), Param.buffer("acc")),
            body=(
                Loop(
                    index_buffer="x",
                    body=(Reduce(target="acc", kind=ReduceKind.SUM, expr=Load("s")),),
                ),
            ),
        )
        buffers = {"x": np.arange(4.0), "s": np.array(2.0), "acc": None}
        _assert_identical(function, buffers, {})
        partials = lower(function, KernelBinding(), backend="codegen")(
            dict(buffers), {}
        )
        assert partials["acc"].value == 8.0  # 2.0 broadcast over 4 elements

    def test_min_max_prod_reductions(self):
        builder = KernelBuilder("mixed")
        builder.buffers("x", "lo", "hi", "prod")
        builder.loop("x")
        builder.reduce("lo", "x", ReduceKind.MIN)
        builder.reduce("hi", "x", ReduceKind.MAX)
        builder.reduce("prod", "x", ReduceKind.PROD)
        builder.end_loop()
        function = builder.build()
        rng = np.random.default_rng(13)
        buffers, scalars = _make_buffers(function, rng)
        _assert_identical(function, buffers, scalars)


class TestCodegenContract:
    """Error handling and the structure of generated source."""

    def test_written_none_buffer_raises_like_interpreter(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("a").assign("out", "a").end_loop()
        function = builder.build()
        for backend in ("interpreter", "codegen"):
            executor = lower(function, KernelBinding(), backend=backend)
            with pytest.raises(RuntimeError, match="not materialised"):
                executor({"a": np.ones(4), "out": None}, {})

    def test_alloc_with_none_reference_raises_like_interpreter(self):
        function = Function(
            name="k",
            params=(Param.buffer("ref"), Param.buffer("out")),
            body=(
                Alloc(name="tmp", like="ref"),
                Loop(index_buffer="out", body=(Assign(target="out", expr=Load("tmp")),)),
            ),
        )
        for backend in ("interpreter", "codegen"):
            executor = lower(function, KernelBinding(), backend=backend)
            with pytest.raises(RuntimeError, match="no reference buffer"):
                executor({"ref": None, "out": np.ones(4)}, {})

    def test_unknown_load_is_a_codegen_error(self):
        function = Function(
            name="k",
            params=(Param.buffer("out"),),
            body=(
                Loop(index_buffer="out", body=(Assign(target="out", expr=Load("ghost")),)),
            ),
        )
        with pytest.raises(CodegenError, match="undeclared"):
            generate_source(function)

    def test_unknown_backend_rejected(self):
        builder = KernelBuilder("k")
        builder.buffers("a")
        builder.loop("a").assign("a", 1.0).end_loop()
        with pytest.raises(ValueError, match="unknown kernel backend"):
            lower(builder.build(), KernelBinding(), backend="llvm")

    def test_differential_executor_detects_divergence(self):
        builder = KernelBuilder("k")
        builder.buffers("a", "out")
        builder.loop("a").assign("out", KernelBuilder.mul("a", 2.0)).end_loop()
        function = builder.build()
        executor = DifferentialExecutor(function, KernelBinding())
        # Sabotage the codegen closure to return corrupted buffers.
        good_fn = executor.codegen._fn

        def bad_fn(buffers, scalars):
            partials = good_fn(buffers, scalars)
            buffers["out"][0] += 1.0
            return partials

        executor.codegen._fn = bad_fn
        with pytest.raises(BackendDivergenceError, match="disagree on buffer"):
            executor({"a": np.ones(4), "out": np.zeros(4)}, {})

    def test_source_compiled_once_per_structure(self):
        builder = KernelBuilder("same")
        builder.buffers("a", "b")
        builder.loop("b").assign("b", KernelBuilder.add("a", 1.0)).end_loop()
        function = builder.build()
        stats = codegen_stats()
        first = CodegenExecutor(function, KernelBinding())
        baseline = stats.source_compilations
        second = CodegenExecutor(function, KernelBinding())
        assert stats.source_compilations == baseline  # cache hit, no compile()
        assert first.source == second.source
        assert not second.freshly_compiled


class TestApplicationDifferential:
    """End-to-end: whole applications under the differential backend."""

    @pytest.mark.parametrize("app", ["cg", "jacobi", "black-scholes"])
    def test_application_backends_agree(self, app, monkeypatch):
        checksums = {}
        for backend in ("interpreter", "differential", "codegen"):
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
            monkeypatch.setenv("REPRO_HOTPATH_CACHE", "1")
            config.reload_flags()
            result = run_application_experiment(
                app, num_gpus=4, fusion=True, iterations=3, warmup_iterations=1
            )
            checksums[backend] = result.checksum
        config.reload_flags()
        assert checksums["interpreter"] == checksums["codegen"]
        assert checksums["interpreter"] == checksums["differential"]

    def test_seed_path_matches_cached_path(self, monkeypatch):
        checksums = {}
        for flag in ("0", "1"):
            monkeypatch.setenv("REPRO_HOTPATH_CACHE", flag)
            config.reload_flags()
            result = run_application_experiment(
                "cg", num_gpus=4, fusion=True, iterations=3, warmup_iterations=1
            )
            checksums[flag] = result.checksum
        config.reload_flags()
        assert checksums["0"] == checksums["1"]


class TestCompileOnce:
    """The submit→fuse→execute hot path never recompiles on replay."""

    def test_memoization_hits_do_not_reenter_compile(self):
        from repro.frontend.legate.context import RuntimeContext, set_context
        from repro.apps.base import build_application

        context = RuntimeContext(num_gpus=4, fusion=True)
        set_context(context)
        try:
            app = build_application("cg", context=context, grid_points_per_gpu=16)
            app.run(3)  # warm-up: all canonical keys observed and compiled
            compiler = context.diffuse.compiler
            compilations = compiler.stats.compilations
            cache_size = compiler.cache_size
            hits_before = context.diffuse.cache.hits
            trace_hits_before = context.profiler.trace_hits
            assert compilations > 0
            app.run(5)  # replay rounds: memoization or trace hits only
            assert compiler.stats.compilations == compilations
            assert compiler.cache_size == cache_size
            # Repeated rounds are absorbed either by the memoization
            # cache or — once an epoch's plan is captured — by trace
            # replay, which bypasses the memoization lookup entirely.
            assert (
                context.diffuse.cache.hits > hits_before
                or context.profiler.trace_hits > trace_hits_before
            )
            # Each cached canonical key was compiled exactly once.
            assert compiler.stats.compilations >= compiler.cache_size
            assert compiler.stats.cache_hits > 0
        finally:
            set_context(None)

    def test_codegen_closures_compiled_once_across_sweep(self, monkeypatch):
        """A weak-scaling sweep reuses closures across compiler instances."""
        from repro.experiments.weak_scaling import run_weak_scaling

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
        stats = codegen_stats()
        scale = ExperimentScale({"grid_points_per_gpu": 16}, 1e-5, 2, 1)
        run_weak_scaling("cg", gpu_counts=(1, 2), scale=scale)
        compiled_after_first = stats.source_compilations
        reuses_after_first = stats.source_cache_hits
        # The same sweep again: every kernel source is already compiled.
        run_weak_scaling("cg", gpu_counts=(1, 2), scale=scale)
        assert stats.source_compilations == compiled_after_first
        assert stats.source_cache_hits > reuses_after_first


class TestBindingMetadata:
    """compose.py attaches access metadata for the runtime executor."""

    def test_metadata_reflects_optimised_function(self):
        from repro.frontend.legate.context import RuntimeContext, set_context
        from repro.apps.base import build_application

        context = RuntimeContext(num_gpus=2, fusion=True)
        set_context(context)
        try:
            app = build_application("cg", context=context, grid_points_per_gpu=16)
            app.run(2)
            compiler = context.diffuse.compiler
            assert compiler.cache_size > 0
            for kernel in compiler._cache.values():
                binding = kernel.binding
                assert binding.buffer_order == tuple(binding.buffer_args.items())
                assert binding.scalar_order == tuple(binding.scalar_args.items())
        finally:
            set_context(None)


class TestSpmvEmptyRows:
    """SpMV handles matrices with empty rows, including trailing ones."""

    @pytest.mark.parametrize("cache_flag", ["0", "1"])
    def test_trailing_empty_rows(self, cache_flag, monkeypatch):
        from repro.frontend.legate.context import runtime_context
        from repro.frontend.sparse.csr import csr_from_dense
        import repro.frontend.cunumeric as cn

        monkeypatch.setenv("REPRO_HOTPATH_CACHE", cache_flag)
        config.reload_flags()
        dense = np.zeros((6, 6))
        dense[0, 0] = 2.0
        dense[1, 1] = 3.0
        dense[2, 0] = 1.0
        dense[3, :] = 0.0  # interior empty row
        # Rows 4 and 5 are empty too: the block's trailing rows.
        with runtime_context(num_gpus=1, fusion=True):
            matrix = csr_from_dense(dense)
            x = cn.array(np.arange(1.0, 7.0), name="x")
            y = matrix.dot(x)
            result = y.to_numpy()
        config.reload_flags()
        np.testing.assert_allclose(result, dense @ np.arange(1.0, 7.0))


class TestRegionViewCache:
    """Region fields memoize sub-store views and can invalidate them."""

    def test_views_are_cached_and_observe_writes(self):
        from repro.ir.domain import Rect
        from repro.ir.store import StoreManager
        from repro.runtime.region import RegionField

        store = StoreManager().create_store((8,))
        field = RegionField(store)
        rect = Rect((2,), (6,))
        first = field.view(rect)
        assert field.view(rect) is first  # memoized
        field.data[3] = 7.0
        assert first[1] == 7.0  # a view, not a copy
        field.invalidate_views()
        fresh = field.view(rect)
        assert fresh is not first
        np.testing.assert_array_equal(fresh, field.data[2:6])


class TestSingleUseTemporaryFolding:
    """Single-use temporaries fold into their consumer expressions.

    The generated source must skip the definition statement (and, for
    task-local allocations, the zeros_like materialisation and the copy
    pass) while staying bit-identical to the interpreter — folding only
    reorders *where* the same NumPy expression is evaluated, never what
    it computes.
    """

    def _alloc_chain(self, middle=()):
        """t = x * y (t alloc'd), [middle...], out = t + y."""
        body = (
            (Alloc(name="t", like="x"),)
            + (
                Loop(
                    index_buffer="x",
                    body=(
                        Assign(
                            target="t",
                            expr=KernelBuilder.mul("x", "y"),
                        ),
                    )
                    + tuple(middle)
                    + (
                        Assign(
                            target="out",
                            expr=KernelBuilder.add(Load("t"), Load("y")),
                        ),
                    ),
                ),
            )
        )
        return Function(
            name="fold_alloc",
            params=(Param.buffer("x"), Param.buffer("y"), Param.buffer("out")),
            body=body,
        )

    def test_single_use_local_folded(self):
        builder = KernelBuilder("fold_local")
        builder.buffers("x", "y", "out")
        builder.loop("out")
        local = builder.let("t", KernelBuilder.mul("x", "y"))
        builder.assign("out", KernelBuilder.add(local, "y"))
        builder.end_loop()
        function = builder.build()
        source = generate_source(function)
        # No local definition statement survives: the expression is
        # rendered inline at its single use.
        assert " = " in source
        assert not any(
            line.strip().startswith("_l") for line in source.splitlines()
        ), source
        rng = np.random.default_rng(3)
        _assert_identical(function, *_make_buffers(function, rng))

    def test_multi_use_local_kept(self):
        builder = KernelBuilder("keep_local")
        builder.buffers("x", "out")
        builder.loop("out")
        local = builder.let("t", KernelBuilder.mul("x", "x"))
        builder.assign("out", KernelBuilder.add(local, local))
        builder.end_loop()
        function = builder.build()
        source = generate_source(function)
        assert any(
            line.strip().startswith("_l") for line in source.splitlines()
        ), source
        rng = np.random.default_rng(4)
        _assert_identical(function, *_make_buffers(function, rng))

    def test_single_use_alloc_folded(self):
        function = self._alloc_chain()
        source = generate_source(function)
        assert "zeros_like" not in source, source
        rng = np.random.default_rng(5)
        _assert_identical(function, *_make_buffers(function, rng))

    def test_intervening_write_prevents_folding(self):
        # t = x * y; y[...] = x; out = t + y — folding t would read the
        # *new* y, so t must stay materialised.
        middle = (Assign(target="y", expr=Load("x")),)
        function = self._alloc_chain(middle)
        source = generate_source(function)
        assert "zeros_like" in source, source
        rng = np.random.default_rng(6)
        _assert_identical(function, *_make_buffers(function, rng))

    def test_load_free_alloc_not_folded(self):
        # A definition without any buffer load may evaluate to a 0-d
        # value; the materialised buffer has full shape, so folding
        # could change downstream reduction semantics.
        function = Function(
            name="scalar_alloc",
            params=(Param.buffer("x"), Param.buffer("acc")),
            body=(
                Alloc(name="t", like="x"),
                Loop(
                    index_buffer="x",
                    body=(
                        Assign(target="t", expr=KernelBuilder.mul(2.0, 3.0)),
                        Reduce(target="acc", kind=ReduceKind.SUM, expr=Load("t")),
                    ),
                ),
            ),
        )
        source = generate_source(function)
        assert "zeros_like" in source, source
        buffers = {"x": np.arange(8.0), "acc": None}
        _assert_identical(function, buffers, {})

    def test_fused_application_kernels_still_identical(self, monkeypatch):
        """End-to-end: folding leaves app checksums bit-identical."""
        scale = ExperimentScale({"elements_per_gpu": 128}, 4e-5, 3, 2)
        results = {}
        try:
            for backend in ("interpreter", "codegen"):
                monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
                config.reload_flags()
                results[backend] = run_application_experiment(
                    "black-scholes", num_gpus=4, fusion=True, scale=scale
                ).checksum
        finally:
            # monkeypatch restores the environment after the test; the
            # memoized flag must be re-read from the restored value.
            monkeypatch.undo()
            config.reload_flags()
        assert results["interpreter"] == results["codegen"]

    def test_local_reassignment_prevents_folding(self):
        # t = l * y with l reassigned between t's definition and use:
        # folding t to the use site would read the *new* l.
        from repro.kernel.kir import BinOp, BinOpKind, LocalRef

        function = Function(
            name="local_hazard",
            params=(
                Param.buffer("x"),
                Param.buffer("y"),
                Param.buffer("z"),
                Param.buffer("out"),
            ),
            body=(
                Loop(
                    index_buffer="out",
                    body=(
                        Assign(target="l", expr=Load("x"), is_local=True),
                        Assign(
                            target="t",
                            expr=BinOp(BinOpKind.MUL, LocalRef("l"), Load("y")),
                            is_local=True,
                        ),
                        Assign(target="l", expr=Load("z"), is_local=True),
                        Assign(
                            target="out",
                            expr=BinOp(BinOpKind.ADD, LocalRef("t"), LocalRef("l")),
                        ),
                    ),
                ),
            ),
        )
        rng = np.random.default_rng(9)
        buffers, scalars = _make_buffers(function, rng)
        _assert_identical(function, buffers, scalars)
        # And the expected value is the unfolded one: out = x*y + z.
        executor = lower(function, KernelBinding(), backend="codegen")
        local = {name: array.copy() for name, array in buffers.items()}
        executor(local, {})
        np.testing.assert_array_equal(
            local["out"], buffers["x"] * buffers["y"] + buffers["z"]
        )
