"""Tests for stores (split reference counting), tasks and the task window."""

import numpy as np
import pytest

from repro.ir.domain import Domain
from repro.ir.partition import Replication, natural_tiling
from repro.ir.privilege import Privilege, ReductionOp, promote, validate_reduction
from repro.ir.store import StoreManager
from repro.ir.task import FusedTask, IndexTask, StoreArg, SubStore, combine_arguments
from repro.ir.window import TaskWindow


class TestPrivileges:
    def test_predicates(self):
        assert Privilege.READ.reads and not Privilege.READ.writes
        assert Privilege.WRITE.writes and not Privilege.WRITE.reads
        assert Privilege.READ_WRITE.reads and Privilege.READ_WRITE.writes
        assert Privilege.REDUCE.reduces and not Privilege.REDUCE.reads

    def test_promotion(self):
        assert promote(Privilege.READ, Privilege.WRITE) is Privilege.READ_WRITE
        assert promote(Privilege.READ, Privilege.READ) is Privilege.READ
        with pytest.raises(ValueError):
            promote(Privilege.READ, Privilege.REDUCE)

    def test_reduction_validation(self):
        validate_reduction(Privilege.REDUCE, ReductionOp.ADD)
        with pytest.raises(ValueError):
            validate_reduction(Privilege.REDUCE, None)
        with pytest.raises(ValueError):
            validate_reduction(Privilege.READ, ReductionOp.ADD)

    def test_reduction_ops(self):
        assert ReductionOp.ADD.identity == 0.0
        assert ReductionOp.MUL.identity == 1.0
        assert ReductionOp.MIN.combine_scalars(3.0, 1.0) == 1.0
        assert ReductionOp.MAX.combine_scalars(3.0, 1.0) == 3.0
        assert ReductionOp.ADD.combine_scalars(3.0, 1.0) == 4.0


class TestStore:
    def test_basic_properties(self, store_manager):
        store = store_manager.create_store((4, 8), name="grid")
        assert store.ndim == 2
        assert store.volume == 32
        assert store.size_bytes == 32 * 8
        assert not store.is_scalar
        assert store_manager.get(store.uid) is store

    def test_scalar_store(self, store_manager):
        scalar = store_manager.create_scalar_store()
        assert scalar.is_scalar
        assert scalar.volume == 1

    def test_split_reference_counting(self, store_manager):
        store = store_manager.create_store((4,))
        assert not store.has_live_application_references
        store.add_application_reference()
        store.add_runtime_reference()
        assert store.has_live_application_references
        assert store.application_references == 1
        assert store.runtime_references == 1
        store.remove_application_reference()
        assert not store.has_live_application_references
        # Runtime references do not make a store application-visible.
        assert store.runtime_references == 1
        with pytest.raises(ValueError):
            store.remove_application_reference()

    def test_unique_ids_and_identity(self, store_manager):
        a = store_manager.create_store((4,))
        b = store_manager.create_store((4,))
        assert a != b
        assert len({a, b}) == 2
        assert len(store_manager) == 2


class TestIndexTask:
    def test_predicates(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        task = IndexTask(
            "add",
            launch4,
            [
                StoreArg(a, part, Privilege.READ),
                StoreArg(b, part, Privilege.WRITE),
            ],
        )
        assert task.reads(a) and not task.writes(a)
        assert task.writes(b) and not task.reads(b)
        assert task.reads(a, part)
        assert not task.reads(a, Replication())
        assert task.stores() == (a, b)
        assert not task.is_fused
        assert task.constituent_count() == 1

    def test_point_tasks_and_substores(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        task = IndexTask("fill", launch4, [StoreArg(a, part, Privilege.WRITE)], (1.0,))
        point = task.point_task((2,))
        (sub, privilege), = point.arguments()
        assert privilege is Privilege.WRITE
        assert sub.rect().lo == (4,)
        assert point.writes(SubStore(a, part, (2,)))
        assert not point.reads(SubStore(a, part, (2,)))
        with pytest.raises(ValueError):
            task.point_task((9,))
        assert len(list(task.point_tasks())) == 4

    def test_substore_intersection(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        assert SubStore(a, part, (0,)).intersects(SubStore(a, Replication(), (3,)))
        assert not SubStore(a, part, (0,)).intersects(SubStore(a, part, (1,)))
        assert not SubStore(a, part, (0,)).intersects(SubStore(b, part, (0,)))


class TestFusedTask:
    def test_argument_combination_promotes_privileges(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        c = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        t1 = IndexTask("add", launch4, [
            StoreArg(a, part, Privilege.READ),
            StoreArg(b, part, Privilege.WRITE),
        ])
        t2 = IndexTask("mul", launch4, [
            StoreArg(b, part, Privilege.READ),
            StoreArg(c, part, Privilege.WRITE),
        ])
        args = combine_arguments([t1, t2])
        by_store = {arg.store.uid: arg for arg in args}
        assert by_store[b.uid].privilege is Privilege.READ_WRITE
        assert by_store[a.uid].privilege is Privilege.READ
        assert by_store[c.uid].privilege is Privilege.WRITE

    def test_temporaries_excluded_from_arguments(self, store_manager, launch4):
        a = store_manager.create_store((8,))
        b = store_manager.create_store((8,))
        c = store_manager.create_store((8,))
        part = natural_tiling((8,), launch4)
        t1 = IndexTask("add", launch4, [
            StoreArg(a, part, Privilege.READ),
            StoreArg(b, part, Privilege.WRITE),
        ])
        t2 = IndexTask("mul", launch4, [
            StoreArg(b, part, Privilege.READ),
            StoreArg(c, part, Privilege.WRITE),
        ])
        fused = FusedTask([t1, t2], combine_arguments([t1, t2], [b]), temporary_stores=[b])
        assert b not in fused.stores()
        assert fused.is_fused
        assert fused.constituent_count() == 2
        assert fused.launch_domain == launch4

    def test_fused_task_requires_constituents(self):
        with pytest.raises(ValueError):
            FusedTask([], [])


class TestTaskWindow:
    def _task(self, store_manager, launch):
        store = store_manager.create_store((8,))
        part = natural_tiling((8,), launch)
        return IndexTask("fill", launch, [StoreArg(store, part, Privilege.WRITE)], (0.0,))

    def test_buffering_and_drain(self, store_manager, launch4):
        window = TaskWindow(initial_size=2, adaptive=False)
        t1 = self._task(store_manager, launch4)
        t2 = self._task(store_manager, launch4)
        assert not window.add(t1)
        assert window.add(t2)  # full at 2
        assert window.pending == 2
        drained = window.drain(1)
        assert drained == [t1]
        assert window.pending == 1
        assert window.drain() == [t2]
        assert window.empty

    def test_runtime_references_tracked(self, store_manager, launch4):
        window = TaskWindow(initial_size=4)
        task = self._task(store_manager, launch4)
        store = task.stores()[0]
        window.add(task)
        assert store.runtime_references == 1
        window.drain()
        assert store.runtime_references == 0

    def test_adaptive_growth(self, store_manager, launch4):
        window = TaskWindow(initial_size=2, max_size=8, adaptive=True)
        window.record_fusion_result(window_length=2, fused_length=2)
        assert window.size == 4
        window.record_fusion_result(window_length=4, fused_length=4)
        assert window.size == 8
        window.record_fusion_result(window_length=8, fused_length=8)
        assert window.size == 8  # capped at max

    def test_no_growth_on_partial_fusion(self):
        window = TaskWindow(initial_size=4, adaptive=True)
        window.record_fusion_result(window_length=4, fused_length=2)
        assert window.size == 4

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            TaskWindow(initial_size=0)
        with pytest.raises(ValueError):
            TaskWindow(initial_size=8, max_size=4)
