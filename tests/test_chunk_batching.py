"""Element-wise chunk batching (eager and replay paths).

PR-4's whole-domain batching collapsed a purely element-wise replay
launch to a single rank, which intra-launch point dispatch could then
not split.  The recorder now *marks* such launches instead
(``CompiledStep.elementwise``) and both replay and the eager path
execute one merged closure call per rank chunk — one per epoch at
dispatch width 1 (the PR-4 behaviour), several concurrent calls when
point dispatch is on — and the same soundness argument makes the eager
path batch too.  These tests pin the counters and the bit-identity of
every combination against the unbatched baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    import repro.runtime.executor as executor_module
    import repro.runtime.scheduler as scheduler_module

    monkeypatch.setattr(executor_module, "MIN_POINT_DISPATCH_VOLUME", 0)
    monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)


def _run_bs(
    monkeypatch, *, trace, point_workers, batching=True, iterations=6, hotpath="1"
):
    if not batching:
        # Suppress both batching sites — the eager detector and the
        # recorder's elementwise verdict — for this run only (a plain
        # monkeypatch.setattr would leak into the test's later runs).
        import repro.runtime.executor as executor_module
        import repro.runtime.trace as trace_module

        with monkeypatch.context() as scoped:
            scoped.setattr(
                executor_module.TaskExecutor,
                "_elementwise_launch",
                lambda self, kernel, prepared, num_points: False,
            )
            scoped.setattr(
                trace_module.TraceRecorder,
                "_elementwise_bindings",
                staticmethod(lambda bindings, num_points, reductions: False),
            )
            return _run_bs(
                monkeypatch,
                trace=trace,
                point_workers=point_workers,
                batching=True,
                iterations=iterations,
                hotpath=hotpath,
            )
    monkeypatch.setenv("REPRO_HOTPATH_CACHE", hotpath)
    monkeypatch.setenv("REPRO_TRACE", "1" if trace else "0")
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "thread")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application("black-scholes", context=context, elements_per_gpu=128)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
        sim = context.legion.simulated_seconds
    finally:
        set_context(None)
    return context, state, checksum, sim


class TestEagerBatching:
    def test_eager_launches_batch_and_match_unbatched(self, monkeypatch):
        ctx_plain, state_plain, checksum_plain, sim_plain = _run_bs(
            monkeypatch, trace=False, point_workers=1, batching=False
        )
        ctx, state, checksum, sim = _run_bs(
            monkeypatch, trace=False, point_workers=1, batching=True
        )
        assert ctx_plain.profiler.batched_launches == 0
        assert ctx.profiler.batched_launches > 0
        # Width 1: exactly one merged call per batched launch.
        assert ctx.profiler.batched_calls == ctx.profiler.batched_launches
        assert checksum == checksum_plain
        assert sim == sim_plain
        for name in state_plain:
            assert np.array_equal(state[name], state_plain[name]), name

    def test_eager_batching_composes_with_point_dispatch(self, monkeypatch):
        _ctx_plain, state_plain, checksum_plain, sim_plain = _run_bs(
            monkeypatch, trace=False, point_workers=1, batching=False
        )
        ctx, state, checksum, sim = _run_bs(
            monkeypatch, trace=False, point_workers=4, batching=True
        )
        assert ctx.profiler.batched_launches > 0
        # Chunked batched launches produce several merged calls each.
        assert ctx.profiler.batched_calls > ctx.profiler.batched_launches
        assert ctx.profiler.point_launches > 0
        assert checksum == checksum_plain
        assert sim == sim_plain
        for name in state_plain:
            assert np.array_equal(state[name], state_plain[name]), name

    def test_baseline_mode_does_not_batch(self, monkeypatch):
        """``REPRO_HOTPATH_CACHE=0`` (the seed baseline) stays per-rank."""
        ctx, _state, checksum, _sim = _run_bs(
            monkeypatch, trace=False, point_workers=1, batching=True, hotpath="0"
        )
        assert ctx.profiler.batched_launches == 0
        assert np.isfinite(checksum)


class TestReplayBatching:
    def test_replay_batches_and_point_dispatch_splits(self, monkeypatch):
        _ctx_plain, state_plain, checksum_plain, sim_plain = _run_bs(
            monkeypatch, trace=True, point_workers=1, batching=False
        )
        ctx_serial, state_serial, checksum_serial, sim_serial = _run_bs(
            monkeypatch, trace=True, point_workers=1, batching=True
        )
        ctx_split, state_split, checksum_split, sim_split = _run_bs(
            monkeypatch, trace=True, point_workers=4, batching=True
        )
        assert ctx_serial.profiler.trace_hits > 0
        assert ctx_serial.profiler.batched_launches > 0
        assert ctx_split.profiler.trace_hits > 0
        # The composition PR-4 precluded: batched launches now split.
        assert ctx_split.profiler.point_launches > 0
        assert ctx_split.profiler.batched_calls > ctx_split.profiler.batched_launches
        for checksum, sim, state in (
            (checksum_serial, sim_serial, state_serial),
            (checksum_split, sim_split, state_split),
        ):
            assert checksum == checksum_plain
            assert sim == sim_plain
            for name in state_plain:
                assert np.array_equal(state[name], state_plain[name]), name

    def test_recorder_marks_elementwise_steps(self, monkeypatch):
        from repro.runtime.trace import CompiledStep

        ctx, _state, _checksum, _sim = _run_bs(
            monkeypatch, trace=True, point_workers=1, batching=True
        )
        plans = list(ctx.diffuse.trace.cache.values())
        assert plans
        compiled = [
            step
            for plan in plans
            for step in plan.steps
            if isinstance(step, CompiledStep)
        ]
        assert compiled
        elementwise = [step for step in compiled if step.elementwise]
        assert elementwise
        # Elementwise steps keep their real rank count (they used to be
        # collapsed to a single whole-domain rank).
        assert all(step.num_points > 1 for step in elementwise)
        assert all(
            len(table) == step.num_points
            for step in elementwise
            for _name, _slot, _red, table in step.buffer_bindings
        )
