"""Intra-launch point dispatch (``REPRO_POINT_WORKERS``).

Acceptance bar: every ``REPRO_POINT_WORKERS`` × ``REPRO_WORKERS``
combination produces bit-identical buffers, checksums and simulated
seconds, asserted under the differential kernel backend with both
dispatch thresholds forced to zero so the pool (and the chunk join
machinery behind it) is actually exercised on tiny problems.
``REPRO_POINT_WORKERS=1`` restores the serial per-rank launch loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.runtime.pool import point_chunks


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    """Zero both dispatch thresholds so tiny launches hit the pool."""
    import repro.runtime.executor as executor_module
    import repro.runtime.scheduler as scheduler_module

    monkeypatch.setattr(executor_module, "MIN_POINT_DISPATCH_VOLUME", 0)
    monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)


# ----------------------------------------------------------------------
# Configuration and chunk planning.
# ----------------------------------------------------------------------
class TestPointConfig:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_POINT_WORKERS", raising=False)
        config.reload_flags()
        assert config.point_worker_count() == 1

    def test_explicit_width(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
        config.reload_flags()
        assert config.point_worker_count() == 4

    def test_width_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_WORKERS", "0")
        config.reload_flags()
        assert config.point_worker_count() == 1
        monkeypatch.setenv("REPRO_POINT_WORKERS", "junk")
        config.reload_flags()
        assert config.point_worker_count() == 1

    def test_min_ranks_default_and_clamp(self, monkeypatch):
        monkeypatch.delenv("REPRO_POINT_MIN_RANKS", raising=False)
        config.reload_flags()
        assert config.point_min_ranks() == 1
        monkeypatch.setenv("REPRO_POINT_MIN_RANKS", "3")
        config.reload_flags()
        assert config.point_min_ranks() == 3
        monkeypatch.setenv("REPRO_POINT_MIN_RANKS", "-2")
        config.reload_flags()
        assert config.point_min_ranks() == 1


class TestPointChunks:
    def test_serial_width_is_one_chunk(self):
        assert point_chunks(8, 1, 1) == [(0, 8)]

    def test_even_split(self):
        assert point_chunks(8, 4, 1) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_leading_chunks(self):
        assert point_chunks(7, 4, 1) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_width_capped_by_points(self):
        assert point_chunks(2, 8, 1) == [(0, 1), (1, 2)]

    def test_min_ranks_floor(self):
        # 8 ranks with a floor of 4 per chunk -> at most 2 chunks.
        assert point_chunks(8, 4, 4) == [(0, 4), (4, 8)]
        # A floor at or above the rank count -> serial.
        assert point_chunks(4, 4, 8) == [(0, 4)]

    def test_chunks_cover_and_are_contiguous(self):
        for num_points in range(1, 17):
            for width in (1, 2, 3, 4, 8):
                chunks = point_chunks(num_points, width, 1)
                assert chunks[0][0] == 0
                assert chunks[-1][1] == num_points
                for (_, stop), (start, _) in zip(chunks, chunks[1:]):
                    assert stop == start


# ----------------------------------------------------------------------
# End-to-end parity: hammer tests across the config matrix.
# ----------------------------------------------------------------------
COMBOS = [(1, 1), (2, 1), (4, 1), (1, 4), (2, 4), (4, 4)]


def _run_app(app_name, point_workers, workers, monkeypatch, iterations, **app_kwargs):
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application(app_name, context=context, **app_kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


class TestPointParity:
    """Satellite: the point-parallel hammer suite.

    Every app runs under the differential backend for the full
    ``REPRO_POINT_WORKERS`` ∈ {1, 2, 4} × ``REPRO_WORKERS`` ∈ {1, 4}
    matrix; buffers, checksums and simulated seconds must match the
    (1, 1) serial baseline bit for bit.
    """

    APPS = [
        ("cg", dict(grid_points_per_gpu=12), 5),
        ("jacobi", dict(rows_per_gpu=32), 6),
        ("black-scholes", dict(elements_per_gpu=128), 6),
    ]

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_matrix_bit_identical(self, app_name, kwargs, iterations, monkeypatch):
        ctx_base, state_base, checksum_base = _run_app(
            app_name, 1, 1, monkeypatch, iterations, **kwargs
        )
        for point_workers, workers in COMBOS[1:]:
            ctx, state, checksum = _run_app(
                app_name, point_workers, workers, monkeypatch, iterations, **kwargs
            )
            label = f"point={point_workers} workers={workers}"
            assert checksum == checksum_base, label
            assert set(state) == set(state_base), label
            for name in state_base:
                assert np.array_equal(state[name], state_base[name]), (label, name)
            assert (
                ctx.profiler.iteration_seconds()
                == ctx_base.profiler.iteration_seconds()
            ), label
            assert (
                ctx.legion.simulated_seconds == ctx_base.legion.simulated_seconds
            ), label
            if point_workers > 1:
                assert ctx.profiler.point_launches > 0, label
                assert ctx.profiler.point_chunks > ctx.profiler.point_launches, label


def _run_two_matvecs(monkeypatch, point_workers, workers, iterations=5, rows=24):
    """A wide epoch: two independent mat-vecs (DAG width 2)."""
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        import repro.frontend.cunumeric as cn
        from repro.frontend.cunumeric import linalg

        rng = np.random.default_rng(7)
        a = cn.array(rng.uniform(1.0, 2.0, (rows, rows)), name="A")
        b = cn.array(rng.uniform(1.0, 2.0, (rows, rows)), name="B")
        x = cn.array(rng.uniform(0.0, 1.0, rows), name="x")
        y = cn.array(rng.uniform(0.0, 1.0, rows), name="y")
        outs = None
        for _ in range(iterations):
            context.profiler.begin_iteration()
            u = linalg.matvec(a, x)
            v = linalg.matvec(b, y)
            outs = (u.to_numpy(), v.to_numpy())
        sim = context.legion.simulated_seconds
    finally:
        set_context(None)
    return context, outs, sim


class TestWideAppParity:
    """Point chunks co-scheduled with independent steps of a wide level."""

    @pytest.mark.parametrize("point_workers,workers", COMBOS[1:], ids=[
        f"p{p}w{w}" for p, w in COMBOS[1:]
    ])
    def test_two_matvec_bit_identical(self, point_workers, workers, monkeypatch):
        _, outs_base, sim_base = _run_two_matvecs(monkeypatch, 1, 1)
        ctx, outs, sim = _run_two_matvecs(monkeypatch, point_workers, workers)
        np.testing.assert_array_equal(outs[0], outs_base[0])
        np.testing.assert_array_equal(outs[1], outs_base[1])
        assert sim == sim_base
        assert ctx.profiler.trace_hits > 0

    def test_wide_level_still_dispatches_steps(self, monkeypatch):
        """Step-level dispatch survives alongside point chunking."""
        ctx, _outs, _sim = _run_two_matvecs(monkeypatch, 4, 4)
        assert ctx.profiler.plan_replays > 0
        assert ctx.profiler.plan_width_max == 2
        assert ctx.profiler.plan_dispatched_steps > 0

    def test_wide_level_with_different_rank_tables(self, monkeypatch):
        """Regression: chunk closures bind their own step's runner.

        Two independent compiled steps of *different* shapes share one
        dependence level; each step's dispatched chunk futures outlive
        the scheduling loop's iteration, so a late-bound runner would
        execute one step's ranks against the other's rect table
        (IndexError or silently corrupted buffers).
        """
        monkeypatch.setenv("REPRO_POINT_WORKERS", "2")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
        # Super-kernel lowering would fuse the width-2 level into one
        # step, hiding exactly the multi-step dispatch window this
        # regression test exists to exercise.
        monkeypatch.setenv("REPRO_SUPERKERNEL", "0")
        config.reload_flags()
        context = RuntimeContext(
            num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4)
        )
        set_context(context)
        try:
            import repro.frontend.cunumeric as cn

            rng = np.random.default_rng(11)
            # A 2-D and a 1-D elementwise op: their partitions cannot
            # align, so they stay two distinct compiled steps sharing a
            # width-2 level with *different* rect tables (the 1-D op is
            # whole-domain batched to a single rank, the 2-D op keeps
            # its four row tiles).
            a_host = rng.uniform(1.0, 2.0, (16, 64))
            b_host = rng.uniform(0.0, 1.0, 128)
            a = cn.array(a_host, name="wideA")
            b = cn.array(b_host, name="wideB")
            for _ in range(6):
                context.profiler.begin_iteration()
                u = a * 2.0
                v = b + 1.0
                np.testing.assert_array_equal(u.to_numpy(), a_host * 2.0)
                np.testing.assert_array_equal(v.to_numpy(), b_host + 1.0)
            assert context.profiler.trace_hits > 0
            assert context.profiler.plan_dispatched_steps > 0
        finally:
            set_context(None)

    def test_chunk_closures_bind_runner_by_value(self, monkeypatch):
        """Deterministic form of the late-binding regression.

        Replace the pool submit with a deferred future that runs its
        closure only at ``result()`` time — i.e. after the scheduling
        loop has moved past every step of the level, exactly the window
        in which a late-bound ``run_chunk`` would have been rebound to a
        different step.  On a single-core host the threaded test above
        rarely hits that window; this one always does.
        """
        import repro.runtime.scheduler as scheduler_module

        class _DeferredFuture:
            def __init__(self, fn):
                self._fn = fn

            def result(self):
                return self._fn()

        monkeypatch.setattr(
            scheduler_module, "submit_guarded", lambda pool, fn: _DeferredFuture(fn)
        )
        monkeypatch.setenv("REPRO_POINT_WORKERS", "2")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
        monkeypatch.setenv("REPRO_SUPERKERNEL", "0")
        config.reload_flags()
        context = RuntimeContext(
            num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4)
        )
        set_context(context)
        try:
            import repro.frontend.cunumeric as cn

            rng = np.random.default_rng(13)
            a_host = rng.uniform(1.0, 2.0, (16, 64))
            b_host = rng.uniform(0.0, 1.0, 128)
            a = cn.array(a_host, name="lateA")
            b = cn.array(b_host, name="lateB")
            for _ in range(6):
                context.profiler.begin_iteration()
                u = a * 2.0
                v = b + 1.0
                np.testing.assert_array_equal(u.to_numpy(), a_host * 2.0)
                np.testing.assert_array_equal(v.to_numpy(), b_host + 1.0)
            assert context.profiler.trace_hits > 0
            assert context.profiler.plan_dispatched_steps > 0
        finally:
            set_context(None)


# ----------------------------------------------------------------------
# Serial regression: REPRO_POINT_WORKERS=1 is the PR-3 path.
# ----------------------------------------------------------------------
class TestSerialRegression:
    """Satellite: the sharing-hazard fix leaves serial results unchanged."""

    def test_serial_chunk_plan_is_single_chunk(self, monkeypatch):
        from repro.runtime.executor import TaskExecutor
        from repro.runtime.machine import MachineConfig
        from repro.runtime.region import RegionManager

        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        config.reload_flags()
        executor = TaskExecutor(RegionManager(), MachineConfig(num_gpus=4))
        assert executor.point_chunk_plan(8, ()) == [(0, 8)]

    def test_nested_dispatch_is_suppressed(self, monkeypatch):
        """Thread-backend pool workers never re-chunk (the deadlock guard).

        The guard applies to the thread substrate only; the process
        backend lifts it (see tests/test_wide_dispatch.py) because
        process chunks cannot deadlock the thread pool.
        """
        from repro.runtime.executor import TaskExecutor
        from repro.runtime.machine import MachineConfig
        from repro.runtime.pool import submit_guarded, worker_pool
        from repro.runtime.region import RegionManager

        monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "thread")
        config.reload_flags()
        executor = TaskExecutor(RegionManager(), MachineConfig(num_gpus=4))
        # On the caller thread the plan chunks...
        assert len(executor.point_chunk_plan(8, ())) == 4
        # ...but on a guarded pool worker it stays serial.
        future = submit_guarded(
            worker_pool(4), lambda: executor.point_chunk_plan(8, ())
        )
        assert future.result() == [(0, 8)]

    def test_point_serial_matches_multichunk_eagerly(self, monkeypatch):
        """Eager path (trace off): chunked == serial, bit for bit."""
        def run(point_workers):
            monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
            monkeypatch.setenv("REPRO_WORKERS", "1")
            monkeypatch.setenv("REPRO_TRACE", "0")
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
            config.reload_flags()
            context = RuntimeContext(
                num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4)
            )
            set_context(context)
            try:
                app = build_application(
                    "cg", context=context, grid_points_per_gpu=12
                )
                app.run(4)
                checksum = app.checksum()
                state = {
                    name: value.to_numpy()
                    for name, value in vars(app).items()
                    if isinstance(value, cn_ndarray)
                }
                sim = context.legion.simulated_seconds
            finally:
                set_context(None)
            return context, state, checksum, sim

        ctx1, state1, checksum1, sim1 = run(1)
        ctx4, state4, checksum4, sim4 = run(4)
        assert ctx1.profiler.point_launches == 0
        assert ctx4.profiler.point_launches > 0
        assert checksum4 == checksum1
        assert sim4 == sim1
        for name in state1:
            assert np.array_equal(state4[name], state1[name]), name


# ----------------------------------------------------------------------
# Profiler counters.
# ----------------------------------------------------------------------
class TestPointProfiling:
    def test_counters_and_reset(self):
        from repro.runtime.profiler import Profiler

        profiler = Profiler()
        assert profiler.point_chunks_per_launch == 0.0
        assert profiler.point_utilization == 0.0
        profiler.record_point_dispatch(ranks=8, chunks=4, width=4)
        profiler.record_point_dispatch(ranks=8, chunks=2, width=4)
        assert profiler.point_launches == 2
        assert profiler.point_ranks == 16
        assert profiler.point_chunks == 6
        assert profiler.point_width_max == 4
        assert profiler.point_chunks_per_launch == 3.0
        assert profiler.point_utilization == 0.75
        profiler.reset()
        assert profiler.point_launches == 0
        assert profiler.point_chunks == 0
        assert profiler.point_width_max == 0
        assert profiler.point_utilization == 0.0
