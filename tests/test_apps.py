"""Correctness tests for the benchmark applications.

Every application is checked two ways: the fused and unfused executions
produce identical results (fusion is semantics-preserving end to end), and
where a NumPy reference implementation exists the checksum matches it.
"""

import numpy as np
import pytest

from repro.apps import (
    BiCGSTAB,
    BlackScholes,
    ChannelFlow,
    ConjugateGradient,
    GeometricMultigrid,
    JacobiIteration,
    ManuallyFusedConjugateGradient,
    ManuallyFusedShallowWater,
    ShallowWater,
    build_application,
)
from repro.apps.base import registered_applications
from repro.frontend.legate.context import RuntimeContext, set_context


def _run_app(app_cls, fusion, iterations, num_gpus=4, **kwargs):
    context = RuntimeContext(num_gpus=num_gpus, fusion=fusion)
    set_context(context)
    try:
        app = app_cls(context=context, **kwargs)
        app.run(iterations)
        return app.checksum(), app, context
    finally:
        set_context(None)


class TestRegistry:
    def test_all_paper_applications_registered(self):
        names = registered_applications()
        for name in ("black-scholes", "jacobi", "cg", "cg-manual", "bicgstab",
                     "gmg", "cfd", "torchswe", "torchswe-manual"):
            assert name in names

    def test_unknown_application_rejected(self):
        with pytest.raises(KeyError):
            build_application("no-such-app")


class TestBlackScholes:
    def test_fused_matches_unfused_and_reference(self):
        fused, app, _ = _run_app(BlackScholes, True, 1, elements_per_gpu=256)
        unfused, _, _ = _run_app(BlackScholes, False, 1, elements_per_gpu=256)
        assert fused == pytest.approx(unfused, rel=1e-12)
        assert fused == pytest.approx(app.reference_checksum(), rel=1e-5)

    def test_prices_are_sane(self):
        _, app, _ = _run_app(BlackScholes, True, 1, elements_per_gpu=128)
        call = app.call.to_numpy()
        put = app.put.to_numpy()
        assert (call >= 0).all() and (put >= 0).all()
        # Put-call parity: C - P = S - K e^{-rT}.
        spot = app.spot.to_numpy()
        strike = app.strike.to_numpy()
        expiry = app.expiry.to_numpy()
        parity = spot - strike * np.exp(-app.rate * expiry)
        np.testing.assert_allclose(call - put, parity, atol=1e-4)


class TestJacobi:
    def test_fused_matches_unfused_and_reference(self):
        iterations = 5
        fused, app, _ = _run_app(JacobiIteration, True, iterations, rows_per_gpu=16)
        unfused, _, _ = _run_app(JacobiIteration, False, iterations, rows_per_gpu=16)
        assert fused == pytest.approx(unfused, rel=1e-12)
        assert fused == pytest.approx(app.reference_checksum(iterations), rel=1e-10)

    def test_converges_towards_solution(self):
        _, app, _ = _run_app(JacobiIteration, True, 30, rows_per_gpu=16)
        x = app.x.to_numpy()
        residual = app._rhs_host - app._matrix_host @ x
        assert np.linalg.norm(residual) < 0.1 * np.linalg.norm(app._rhs_host)


class TestKrylovSolvers:
    def test_cg_fused_matches_unfused(self):
        fused, app, _ = _run_app(ConjugateGradient, True, 6, grid_points_per_gpu=5)
        unfused, _, _ = _run_app(ConjugateGradient, False, 6, grid_points_per_gpu=5)
        assert fused == pytest.approx(unfused, rel=1e-10)

    def test_cg_converges_to_reference(self):
        _, app, _ = _run_app(ConjugateGradient, True, 120, grid_points_per_gpu=5)
        reference = app.reference_solution()
        np.testing.assert_allclose(app.x.to_numpy(), reference, atol=1e-6)

    def test_manual_cg_matches_natural_cg(self):
        natural, _, _ = _run_app(ConjugateGradient, True, 6, grid_points_per_gpu=5)
        manual, _, _ = _run_app(ManuallyFusedConjugateGradient, True, 6, grid_points_per_gpu=5)
        assert natural == pytest.approx(manual, rel=1e-10)

    def test_manual_cg_issues_fewer_tasks(self):
        _, _, natural_ctx = _run_app(ConjugateGradient, False, 4, grid_points_per_gpu=5)
        _, _, manual_ctx = _run_app(ManuallyFusedConjugateGradient, False, 4, grid_points_per_gpu=5)
        assert (
            manual_ctx.profiler.tasks_per_iteration(fused_view=False)
            < natural_ctx.profiler.tasks_per_iteration(fused_view=False)
        )

    def test_bicgstab_fused_matches_unfused(self):
        fused, app, _ = _run_app(BiCGSTAB, True, 6, grid_points_per_gpu=5)
        unfused, _, _ = _run_app(BiCGSTAB, False, 6, grid_points_per_gpu=5)
        assert fused == pytest.approx(unfused, rel=1e-9)

    def test_bicgstab_converges_to_reference(self):
        _, app, _ = _run_app(BiCGSTAB, True, 60, grid_points_per_gpu=5)
        reference = app.reference_solution()
        np.testing.assert_allclose(app.x.to_numpy(), reference, atol=1e-4)


class TestGMG:
    def test_fused_matches_unfused(self):
        fused, _, _ = _run_app(GeometricMultigrid, True, 3, grid_points_per_gpu=6)
        unfused, _, _ = _run_app(GeometricMultigrid, False, 3, grid_points_per_gpu=6)
        assert fused == pytest.approx(unfused, rel=1e-9)

    def test_preconditioned_cg_reduces_residual(self):
        _, app, _ = _run_app(GeometricMultigrid, True, 8, grid_points_per_gpu=6)
        initial_norm = float(np.sqrt(app.rows))  # ||b|| with b = ones
        assert app.residual_norm() < 0.1 * initial_norm

    def test_restriction_prolongation_shapes(self):
        _, app, _ = _run_app(GeometricMultigrid, True, 1, grid_points_per_gpu=6)
        import repro.frontend.cunumeric as cn

        set_context(app.context)
        try:
            fine = cn.ones(app.rows)
            coarse = app._restrict(fine)
            assert coarse.shape == (app.coarse_points ** 2,)
            np.testing.assert_allclose(coarse.to_numpy(), 1.0)
            back = app._prolong(coarse)
            assert back.shape == (app.rows,)
            np.testing.assert_allclose(back.to_numpy(), 1.0)
        finally:
            set_context(None)


class TestCFD:
    def test_fused_matches_unfused_and_reference(self):
        iterations = 2
        fused, app, _ = _run_app(ChannelFlow, True, iterations, points_per_gpu=6,
                                 pressure_iterations=3)
        unfused, _, _ = _run_app(ChannelFlow, False, iterations, points_per_gpu=6,
                                 pressure_iterations=3)
        assert fused == pytest.approx(unfused, rel=1e-10)
        assert fused == pytest.approx(app.reference_checksum(iterations), rel=1e-8)

    def test_flow_develops(self):
        _, app, _ = _run_app(ChannelFlow, True, 3, points_per_gpu=6, pressure_iterations=3)
        assert app.checksum() > 0.0


class TestShallowWater:
    def test_fused_matches_unfused_and_reference(self):
        iterations = 2
        fused, app, _ = _run_app(ShallowWater, True, iterations, points_per_gpu=6)
        unfused, _, _ = _run_app(ShallowWater, False, iterations, points_per_gpu=6)
        assert fused == pytest.approx(unfused, rel=1e-10)
        assert fused == pytest.approx(app.reference_checksum(iterations), rel=1e-8)

    def test_manual_variant_matches_natural(self):
        natural, _, _ = _run_app(ShallowWater, True, 2, points_per_gpu=6)
        manual, _, _ = _run_app(ManuallyFusedShallowWater, True, 2, points_per_gpu=6)
        assert natural == pytest.approx(manual, rel=1e-9)

    def test_manual_variant_issues_fewer_tasks(self):
        _, _, natural_ctx = _run_app(ShallowWater, False, 2, points_per_gpu=6)
        _, _, manual_ctx = _run_app(ManuallyFusedShallowWater, False, 2, points_per_gpu=6)
        assert (
            manual_ctx.profiler.tasks_per_iteration(fused_view=False)
            < natural_ctx.profiler.tasks_per_iteration(fused_view=False)
        )

    def test_water_volume_conserved_in_interior(self):
        """Reflective boundaries keep total depth roughly constant."""
        _, app, _ = _run_app(ShallowWater, True, 3, points_per_gpu=6)
        total = float(app.h.sum())
        initial = float(np.sum(app._initial_h))
        assert total == pytest.approx(initial, rel=0.05)


class TestFusionEffectOnApplications:
    """Fusion reduces launched index tasks for every fusible application."""

    @pytest.mark.parametrize("app_name,kwargs", [
        ("black-scholes", {"elements_per_gpu": 128}),
        ("cg", {"grid_points_per_gpu": 5}),
        ("bicgstab", {"grid_points_per_gpu": 5}),
        ("cfd", {"points_per_gpu": 6, "pressure_iterations": 2}),
        ("torchswe", {"points_per_gpu": 6}),
    ])
    def test_fewer_launched_tasks(self, app_name, kwargs):
        context_fused = RuntimeContext(num_gpus=2, fusion=True)
        set_context(context_fused)
        try:
            app = build_application(app_name, context=context_fused, **kwargs)
            app.run(2)
        finally:
            set_context(None)
        context_plain = RuntimeContext(num_gpus=2, fusion=False)
        set_context(context_plain)
        try:
            app = build_application(app_name, context=context_plain, **kwargs)
            app.run(2)
        finally:
            set_context(None)
        assert (
            context_fused.profiler.tasks_per_iteration(fused_view=True)
            < context_plain.profiler.tasks_per_iteration(fused_view=True)
        )
