"""Eager-path overlap accounting (``REPRO_OVERLAP_MODEL=1``, trace off).

The plan scheduler has charged level-max simulated time since PR 3; this
suite covers the eager-path extension: consecutive pairwise-independent
launches form a greedy group charged the maximum of their modelled
times, flushed at every hazard, host synchronisation point and iteration
boundary.  Buffers are bit-identical; only simulated time changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.experiments.weak_scaling import run_overlap_study
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.runtime.machine import MachineConfig


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


def _context(monkeypatch, overlap, trace="0"):
    monkeypatch.setenv("REPRO_OVERLAP_MODEL", overlap)
    monkeypatch.setenv("REPRO_TRACE", trace)
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    return context


def _run_two_matvecs(context, iterations=4, rows=32):
    import repro.frontend.cunumeric as cn
    from repro.frontend.cunumeric import linalg

    rng = np.random.default_rng(3)
    a = cn.array(rng.uniform(1.0, 2.0, (rows, rows)), name="A")
    b = cn.array(rng.uniform(1.0, 2.0, (rows, rows)), name="B")
    x = cn.array(rng.uniform(0.0, 1.0, rows), name="x")
    y = cn.array(rng.uniform(0.0, 1.0, rows), name="y")
    outs = None
    for _ in range(iterations):
        context.profiler.begin_iteration()
        u = linalg.matvec(a, x)
        v = linalg.matvec(b, y)
        outs = (u.to_numpy(), v.to_numpy())
    return outs


class TestEagerOverlap:
    def test_independent_launches_charge_group_max(self, monkeypatch):
        context = _context(monkeypatch, overlap="1")
        try:
            outs_overlap = _run_two_matvecs(context)
            sim_overlap = context.legion.simulated_seconds
        finally:
            set_context(None)

        context = _context(monkeypatch, overlap="0")
        try:
            outs_serial = _run_two_matvecs(context)
            sim_serial = context.legion.simulated_seconds
        finally:
            set_context(None)

        # Bit-identical data; strictly less simulated time (the two
        # independent mat-vecs of each eager epoch overlap).
        np.testing.assert_array_equal(outs_overlap[0], outs_serial[0])
        np.testing.assert_array_equal(outs_overlap[1], outs_serial[1])
        assert sim_overlap < sim_serial

    def test_dependent_chain_is_unchanged(self, monkeypatch):
        """A pure dependence chain has nothing to overlap: same seconds."""

        def run(overlap):
            context = _context(monkeypatch, overlap=overlap)
            try:
                app = build_application("jacobi", context=context, rows_per_gpu=32)
                app.run(4)
                checksum = app.checksum()
                sim = context.legion.simulated_seconds
            finally:
                set_context(None)
            return checksum, sim

        checksum_serial, sim_serial = run("0")
        checksum_overlap, sim_overlap = run("1")
        assert checksum_overlap == checksum_serial
        # Jacobi's epoch is matvec -> residual -> update: every launch
        # conflicts with its predecessor, so each group is a singleton
        # and overlap accounting degenerates to the serial sum.  Only
        # the accumulation *order* against interleaved analysis charges
        # differs (groups are charged at their flush points), so the
        # totals agree to floating-point round-off rather than bit for
        # bit — bit parity is only promised with the overlap model off.
        assert sim_overlap == pytest.approx(sim_serial, rel=1e-12)

    def test_group_flushes_at_host_reads(self, monkeypatch):
        """A scalar/array read closes the pending group before blocking."""
        context = _context(monkeypatch, overlap="1")
        try:
            import repro.frontend.cunumeric as cn
            from repro.frontend.cunumeric import linalg

            rng = np.random.default_rng(5)
            a = cn.array(rng.uniform(1.0, 2.0, (16, 16)), name="A")
            x = cn.array(rng.uniform(0.0, 1.0, 16), name="x")
            u = linalg.matvec(a, x)
            u.to_numpy()  # host read: group must be charged now
            assert context.legion.simulated_seconds > 0.0
            assert not context.legion._overlap_seconds
        finally:
            set_context(None)

    def test_group_seconds_helper(self):
        machine = MachineConfig(num_gpus=2)
        assert machine.overlapped_group_seconds([1.0, 3.0, 2.0]) == 3.0
        assert machine.overlapped_group_seconds([]) == 0.0


class TestOverlapStudy:
    """Satellite: the weak-scaling harness quantifies the overlap claim."""

    def test_overlap_study_runs_and_is_consistent(self):
        series = run_overlap_study("cg", gpu_counts=(1, 2), iterations=2)
        serial = series["Serial accounting"]
        overlap = series["Overlap-aware"]
        assert serial.gpu_counts == overlap.gpu_counts == [1, 2]
        for base, overlapped in zip(serial.results, overlap.results):
            # Bit-identical computation, never-slower simulated time.
            assert overlapped.checksum == base.checksum
            assert overlapped.throughput >= base.throughput
            assert overlapped.overlap_model is True
            assert base.overlap_model is False

    def test_flag_restored_after_study(self, monkeypatch):
        monkeypatch.delenv("REPRO_OVERLAP_MODEL", raising=False)
        run_overlap_study("jacobi", gpu_counts=(1,), iterations=1)
        config.reload_flags()
        assert config.overlap_model_enabled() is False
