"""Tests for partitions: sub-store bounds, equality, coverage, projections."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.domain import Domain, Rect
from repro.ir.partition import Replication, Tiling, natural_tiling, partitions_alias
from repro.ir.projection import (
    constant_projection,
    drop_dimensions,
    identity_projection,
    promote_dimension,
    transpose_projection,
)


class TestReplication:
    def test_maps_every_point_to_whole_store(self):
        part = Replication()
        assert part.sub_store_rect((0,), (8,)) == Rect.from_shape((8,))
        assert part.sub_store_rect((3,), (8,)) == Rect.from_shape((8,))

    def test_covers(self):
        assert Replication().covers((8, 8), Domain((2,)))
        assert not Replication().covers((8,), Domain((0,)))

    def test_equality(self):
        assert Replication() == Replication()
        assert Replication() != Tiling.create((2,))
        assert Replication().is_replication()


class TestTiling:
    def test_paper_figure_3a(self):
        """2x2 tiling of a 4x4 store over a 2x2 domain."""
        part = Tiling.create((2, 2))
        assert part.sub_store_rect((0, 0), (4, 4)) == Rect((0, 0), (2, 2))
        assert part.sub_store_rect((1, 1), (4, 4)) == Rect((2, 2), (4, 4))

    def test_paper_figure_3b(self):
        """1x4 (row) tiling of a 4x4 store over a 4x1 domain."""
        part = Tiling.create((1, 4))
        assert part.sub_store_rect((2, 0), (4, 4)) == Rect((2, 0), (3, 4))

    def test_paper_figure_3c_offset(self):
        """Offset 1x1 tiling of a 4x4 store."""
        part = Tiling.create((1, 1), offset=(1, 1))
        assert part.sub_store_rect((0, 0), (4, 4)) == Rect((1, 1), (2, 2))
        assert part.sub_store_rect((1, 0), (4, 4)) == Rect((2, 1), (3, 2))

    def test_paper_figure_3d_projection(self):
        """Aliased blocking of a size-4 store over a 2-D domain."""
        part = Tiling.create((2,), projection=drop_dimensions([0]))
        # Both points in the same row map to the same sub-store.
        assert part.sub_store_rect((0, 0), (4,)) == part.sub_store_rect((0, 1), (4,))
        assert part.sub_store_rect((1, 0), (4,)) == Rect((2,), (4,))

    def test_clamping_to_store(self):
        part = Tiling.create((3,))
        assert part.sub_store_rect((2,), (7,)) == Rect((6,), (7,))
        assert part.sub_store_rect((3,), (7,)).empty

    def test_bounds_clipping(self):
        """View tilings never spill outside the view's bounds."""
        bounds = Rect((1, 1), (5, 5))
        part = Tiling.create((2, 2), offset=(1, 1), bounds=bounds)
        assert part.sub_store_rect((1, 1), (6, 6)) == Rect((3, 3), (5, 5))
        # Without bounds the same tile would reach to (5, 5) .. (5+2).
        unbounded = Tiling.create((2, 2), offset=(1, 1))
        assert unbounded.sub_store_rect((1, 1), (6, 6)) == Rect((3, 3), (5, 5))
        part_edge = Tiling.create((3, 3), offset=(1, 1), bounds=bounds)
        assert part_edge.sub_store_rect((1, 1), (8, 8)) == Rect((4, 4), (5, 5))

    def test_negative_tile_rejected(self):
        with pytest.raises(ValueError):
            Tiling.create((-1,))

    def test_offset_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Tiling.create((2, 2), offset=(1,))

    def test_equality_structural(self):
        assert Tiling.create((2, 2)) == Tiling.create((2, 2))
        assert Tiling.create((2, 2)) != Tiling.create((2, 2), offset=(1, 1))
        assert Tiling.create((2, 2)) != Tiling.create((4, 1))
        proj = drop_dimensions([0])
        assert Tiling.create((2,), projection=proj) == Tiling.create((2,), projection=proj)
        assert Tiling.create((2,), projection=proj) != Tiling.create((2,))

    def test_covers_full_and_partial(self):
        launch = Domain((4,))
        assert Tiling.create((2,)).covers((8,), launch)
        assert not Tiling.create((1,)).covers((8,), launch)
        offset = Tiling.create((2,), offset=(1,))
        assert not offset.covers((8,), launch)

    def test_covers_with_projection_replication(self):
        """A projected tiling replicating tiles still covers the store."""
        part = Tiling.create((2,), projection=drop_dimensions([0]))
        assert part.covers((4,), Domain((2, 3)))


class TestNaturalTiling:
    def test_matches_launch_domain(self):
        launch = Domain((4,))
        part = natural_tiling((8,), launch)
        union = 0
        for point in launch.points():
            union += part.sub_store_rect(point, (8,)).volume
        assert union == 8

    @settings(max_examples=50)
    @given(
        extent=st.integers(min_value=1, max_value=64),
        parts=st.integers(min_value=1, max_value=8),
    )
    def test_tiles_disjoint_and_cover(self, extent, parts):
        """Property: natural tiling tiles are disjoint and cover the store."""
        launch = Domain((parts,))
        part = natural_tiling((extent,), launch)
        rects = [part.sub_store_rect(p, (extent,)) for p in launch.points()]
        total = sum(rect.volume for rect in rects)
        assert total == extent
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)
        assert part.covers((extent,), launch)


class TestAliasQuery:
    def test_equal_partitions_do_not_alias(self):
        assert not partitions_alias(Tiling.create((2,)), Tiling.create((2,)))

    def test_unequal_partitions_alias(self):
        assert partitions_alias(Tiling.create((2,)), Tiling.create((4,)))
        assert partitions_alias(Tiling.create((2,)), Replication())


class TestProjections:
    def test_identity_interned(self):
        assert identity_projection() is identity_projection()
        assert identity_projection()((3, 4)) == (3, 4)

    def test_drop_dimensions(self):
        proj = drop_dimensions([1])
        assert proj((3, 4)) == (4,)
        assert drop_dimensions([1]) == proj

    def test_constant(self):
        proj = constant_projection((0, 0))
        assert proj((5, 7)) == (0, 0)

    def test_transpose(self):
        proj = transpose_projection([1, 0])
        assert proj((3, 4)) == (4, 3)

    def test_promote(self):
        proj = promote_dimension(0, 2)
        assert proj((5,)) == (5, 0)
        assert promote_dimension(1, 2)((5,)) == (0, 5)

    def test_distinct_projections_not_equal(self):
        assert drop_dimensions([0]) != drop_dimensions([1])
        assert constant_projection((0,)) != constant_projection((1,))
