"""The dependence-partitioned plan scheduler (``runtime/scheduler.py``).

Acceptance bar: ``REPRO_WORKERS=N`` (N>1) produces bit-identical buffers
and identical simulated seconds to serial execution for every harness
application, asserted under the differential kernel backend with the
pool-dispatch threshold forced to zero so the worker pool (and the
thread-safe executor/region caches behind it) is actually exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.ir.domain import Domain
from repro.ir.partition import natural_tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.machine import MachineConfig
from repro.runtime.scheduler import (
    MIN_DISPATCH_VOLUME,
    PlanSchedule,
    analyze_plan,
)
from repro.runtime.trace import AnalysisCharge, CompiledStep, ExecutionPlan, OpaqueStep


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


# ----------------------------------------------------------------------
# Configuration.
# ----------------------------------------------------------------------
class TestWorkerConfig:
    def test_explicit_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        config.reload_flags()
        assert config.worker_count() == 4

    def test_worker_count_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        config.reload_flags()
        assert config.worker_count() == 1
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        config.reload_flags()
        assert config.worker_count() == 1

    def test_default_is_cpu_bounded(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        config.reload_flags()
        import os

        expected = max(1, min(os.cpu_count() or 1, config.MAX_DEFAULT_WORKERS))
        assert config.worker_count() == expected

    def test_overlap_model_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_OVERLAP_MODEL", raising=False)
        config.reload_flags()
        assert config.overlap_model_enabled() is False


# ----------------------------------------------------------------------
# Plan analysis: dependence DAG construction from footprints.
# ----------------------------------------------------------------------
def _compiled_step(footprint):
    return CompiledStep(
        kernel=None,
        task_name="t",
        fused=False,
        constituents=1,
        launches=1,
        num_points=1,
        buffer_bindings=(),
        scalar_order=(),
        scalar_positions=(),
        reductions={},
        footprint=footprint,
        kernel_seconds=0.0,
        communication_seconds=0.0,
        overhead_seconds=0.0,
    )


def _plan(steps):
    return ExecutionPlan(
        steps=tuple(steps),
        exit_states=(),
        bytes_moved=0.0,
        analysis_seconds=0.0,
        forwarded_tasks=0,
        fused_tasks=0,
        fused_constituents=0,
        temporaries_eliminated=0,
        task_count=len(steps),
    )


def _levels(schedule: PlanSchedule):
    return [tuple(level) for level in schedule.levels]


class TestPlanAnalysis:
    def test_raw_dependence_chains(self):
        # A writes slot 0; B reads slot 0, writes slot 1.
        a = _compiled_step(((0, False, True, False),))
        b = _compiled_step(((0, True, False, False), (1, False, True, False)))
        schedule = analyze_plan(_plan([a, b]), [])
        assert _levels(schedule) == [(0,), (1,)]
        assert schedule.width == 1
        assert schedule.steps[1].deps == (0,)

    def test_independent_steps_share_a_level(self):
        a = _compiled_step(((0, True, False, False), (1, False, True, False)))
        b = _compiled_step(((0, True, False, False), (2, False, True, False)))
        schedule = analyze_plan(_plan([a, b]), [])
        assert _levels(schedule) == [(0, 1)]
        assert schedule.width == 2

    def test_war_dependence_orders_write_after_read(self):
        # A reads slot 0; B overwrites slot 0 -> B must wait for A.
        a = _compiled_step(((0, True, False, False), (1, False, True, False)))
        b = _compiled_step(((0, False, True, False),))
        schedule = analyze_plan(_plan([a, b]), [])
        assert _levels(schedule) == [(0,), (1,)]
        assert schedule.steps[1].deps == (0,)

    def test_waw_and_reduce_conflicts_are_ordered(self):
        # Two reductions into the same slot stay in recorded order.
        a = _compiled_step(((0, False, False, True),))
        b = _compiled_step(((0, False, False, True),))
        schedule = analyze_plan(_plan([a, b]), [])
        assert _levels(schedule) == [(0,), (1,)]

    def test_analysis_charges_are_not_scheduled(self):
        a = _compiled_step(((0, False, True, False),))
        schedule = analyze_plan(_plan([AnalysisCharge(1e-6), a, AnalysisCharge(2e-6)]), [])
        assert len(schedule.steps) == 1
        assert schedule.steps[0].plan_index == 1

    def test_diamond(self):
        # A -> (B, C) -> D.
        a = _compiled_step(((0, False, True, False),))
        b = _compiled_step(((0, True, False, False), (1, False, True, False)))
        c = _compiled_step(((0, True, False, False), (2, False, True, False)))
        d = _compiled_step(((1, True, False, False), (2, True, False, False), (3, False, True, False)))
        schedule = analyze_plan(_plan([a, b, c, d]), [])
        assert _levels(schedule) == [(0,), (1, 2), (3,)]
        assert schedule.width == 2
        assert schedule.steps[3].deps == (1, 2)

    def test_schedule_cached_on_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        config.reload_flags()
        plan = _plan([_compiled_step(((0, False, True, False),))])
        assert plan.schedule is None
        schedule = analyze_plan(plan, [])
        plan.schedule = schedule
        assert plan.schedule is schedule


# ----------------------------------------------------------------------
# End-to-end parity: scheduled replay is bit-identical to serial.
# ----------------------------------------------------------------------
def _run_app(app_name, workers, monkeypatch, iterations, **app_kwargs):
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    # Pin point dispatch off: this file asserts the PR-3 step-level
    # behaviour exactly (tests/test_point_dispatch.py covers the matrix).
    monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application(app_name, context=context, **app_kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


class TestScheduledReplayParity:
    """Satellite: hammer the same plans from ``REPRO_WORKERS=4``."""

    APPS = [
        ("cg", dict(grid_points_per_gpu=16), 8),
        ("jacobi", dict(rows_per_gpu=48), 8),
        ("black-scholes", dict(elements_per_gpu=256), 10),
    ]

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_workers_bit_identical(self, app_name, kwargs, iterations, monkeypatch):
        import repro.runtime.scheduler as scheduler_module

        # Force every step through the worker pool regardless of size so
        # the concurrent path (and the caches under it) is exercised.
        monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)

        ctx_serial, state_serial, checksum_serial = _run_app(
            app_name, 1, monkeypatch, iterations, **kwargs
        )
        ctx_pool, state_pool, checksum_pool = _run_app(
            app_name, 4, monkeypatch, iterations, **kwargs
        )

        assert ctx_pool.profiler.trace_hits > 0
        assert ctx_pool.profiler.plan_replays > 0

        assert checksum_pool == checksum_serial
        assert set(state_pool) == set(state_serial)
        for name in state_serial:
            assert np.array_equal(state_pool[name], state_serial[name]), name

        # Identical simulated seconds, per iteration and in total.
        assert (
            ctx_pool.profiler.iteration_seconds()
            == ctx_serial.profiler.iteration_seconds()
        )
        assert ctx_pool.legion.simulated_seconds == ctx_serial.legion.simulated_seconds

    def test_repeated_hammering_is_stable(self, monkeypatch):
        """Replaying one plan many times through the pool stays bit-stable."""
        import repro.runtime.scheduler as scheduler_module

        monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)
        ctx_a, state_a, checksum_a = _run_app(
            "cg", 4, monkeypatch, 16, grid_points_per_gpu=16
        )
        ctx_b, state_b, checksum_b = _run_app(
            "cg", 4, monkeypatch, 16, grid_points_per_gpu=16
        )
        assert checksum_a == checksum_b
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), name


# ----------------------------------------------------------------------
# Width > 1: independent opaque launches overlap.
# ----------------------------------------------------------------------
def _two_matvec_context(monkeypatch, workers, overlap="0"):
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
    monkeypatch.setenv("REPRO_OVERLAP_MODEL", overlap)
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    return context


def _run_two_matvecs(context, iterations=6, rows=32):
    import repro.frontend.cunumeric as cn
    from repro.frontend.cunumeric import linalg

    rng = np.random.default_rng(3)
    a = cn.array(rng.uniform(1.0, 2.0, (rows, rows)), name="A")
    b = cn.array(rng.uniform(1.0, 2.0, (rows, rows)), name="B")
    x = cn.array(rng.uniform(0.0, 1.0, rows), name="x")
    y = cn.array(rng.uniform(0.0, 1.0, rows), name="y")
    outs = None
    for _ in range(iterations):
        context.profiler.begin_iteration()
        # Two independent mat-vecs in one epoch: neither reads the
        # other's output, so the plan's DAG has one level of width 2.
        u = linalg.matvec(a, x)
        v = linalg.matvec(b, y)
        outs = (u.to_numpy(), v.to_numpy())
    return outs


class TestHorizontalConcurrency:
    def test_width_two_plan_dispatches_to_pool(self, monkeypatch):
        import repro.runtime.scheduler as scheduler_module

        monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)
        context = _two_matvec_context(monkeypatch, workers=4)
        try:
            outs_pool = _run_two_matvecs(context)
            profiler = context.profiler
            assert profiler.trace_hits > 0
            assert profiler.plan_replays > 0
            assert profiler.plan_width_max == 2
            assert profiler.plan_dispatched_steps > 0
            assert 0.0 < profiler.worker_utilization <= 1.0
            assert profiler.plan_average_width > 1.0
            sim_pool = context.legion.simulated_seconds
        finally:
            set_context(None)

        context = _two_matvec_context(monkeypatch, workers=1)
        try:
            outs_serial = _run_two_matvecs(context)
            assert context.profiler.plan_replays == 0  # serial path
            sim_serial = context.legion.simulated_seconds
        finally:
            set_context(None)

        np.testing.assert_array_equal(outs_pool[0], outs_serial[0])
        np.testing.assert_array_equal(outs_pool[1], outs_serial[1])
        assert sim_pool == sim_serial

    def test_overlap_model_charges_level_max(self, monkeypatch):
        context = _two_matvec_context(monkeypatch, workers=1, overlap="1")
        try:
            outs_overlap = _run_two_matvecs(context)
            sim_overlap = context.legion.simulated_seconds
            assert context.profiler.plan_replays > 0
        finally:
            set_context(None)

        context = _two_matvec_context(monkeypatch, workers=1, overlap="0")
        try:
            outs_serial = _run_two_matvecs(context)
            sim_serial = context.legion.simulated_seconds
        finally:
            set_context(None)

        # Bit-identical data; strictly less simulated time (the two
        # independent mat-vecs of each replayed epoch overlap).
        np.testing.assert_array_equal(outs_overlap[0], outs_serial[0])
        np.testing.assert_array_equal(outs_overlap[1], outs_serial[1])
        assert sim_overlap < sim_serial

    def test_overlap_model_helper(self):
        machine = MachineConfig(num_gpus=2)
        assert machine.overlapped_level_seconds([1.0, 3.0, 2.0]) == 3.0
        assert machine.overlapped_level_seconds([]) == 0.0


# ----------------------------------------------------------------------
# Profiler counters.
# ----------------------------------------------------------------------
class TestPlanProfiling:
    def test_counters_and_reset(self):
        from repro.runtime.profiler import Profiler

        profiler = Profiler()
        assert profiler.plan_average_width == 0.0
        assert profiler.worker_utilization == 0.0
        profiler.record_plan_execution(steps=4, levels=2, width=3, dispatched=3)
        assert profiler.plan_replays == 1
        assert profiler.plan_width_max == 3
        assert profiler.plan_average_width == 2.0
        assert profiler.worker_utilization == 0.75
        profiler.reset()
        assert profiler.plan_replays == 0
        assert profiler.plan_width_max == 0
        assert profiler.worker_utilization == 0.0
