"""Tests for the Legate-Sparse-like frontend and the PETSc baseline."""

import numpy as np
import pytest

import repro.frontend.cunumeric as cn
from repro.baselines.petsc import KSP, PetscMachineModel, Vec, poisson_2d_aij
from repro.frontend.sparse import csr_from_dense, poisson_2d
from repro.frontend.sparse.linalg import bicgstab, cg
from repro.runtime.machine import MachineConfig


class TestCSRMatrix:
    def test_poisson_structure(self, any_context):
        matrix = poisson_2d(4)
        assert matrix.shape == (16, 16)
        assert matrix.nnz == 5 * 16 - 4 * 4  # 5-point stencil minus boundary arms
        dense = matrix.to_dense()
        assert np.allclose(dense, dense.T)
        assert (np.diag(dense) == 4.0).all()

    def test_from_dense_round_trip(self, any_context):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((6, 6))
        dense[np.abs(dense) < 0.6] = 0.0
        matrix = csr_from_dense(dense)
        np.testing.assert_allclose(matrix.to_dense(), dense)

    def test_spmv_matches_scipy_reference(self, any_context):
        import scipy.sparse as sp

        rng = np.random.default_rng(2)
        dense = rng.standard_normal((20, 20))
        dense[np.abs(dense) < 1.0] = 0.0
        np.fill_diagonal(dense, 2.0)
        matrix = csr_from_dense(dense)
        x_host = rng.standard_normal(20)
        result = matrix.dot(cn.array(x_host))
        expected = sp.csr_matrix(dense) @ x_host
        np.testing.assert_allclose(result.to_numpy(), expected, rtol=1e-12)

    def test_matmul_operator_and_validation(self, any_context):
        matrix = poisson_2d(3)
        x = cn.ones(9)
        np.testing.assert_allclose((matrix @ x).to_numpy(), matrix.to_dense() @ np.ones(9))
        with pytest.raises(ValueError):
            matrix.dot(cn.ones(5))

    def test_diagonal(self, any_context):
        matrix = poisson_2d(4)
        np.testing.assert_allclose(matrix.diagonal().to_numpy(), np.full(16, 4.0))


class TestSparseSolvers:
    def test_cg_converges(self, any_context):
        matrix = poisson_2d(6)
        reference = np.linalg.solve(matrix.to_dense(), np.ones(36))
        solution, residual = cg(matrix, cn.ones(36), cn.zeros(36), iterations=40)
        np.testing.assert_allclose(solution.to_numpy(), reference, atol=1e-8)
        assert residual < 1e-12

    def test_bicgstab_converges(self, any_context):
        matrix = poisson_2d(6)
        reference = np.linalg.solve(matrix.to_dense(), np.ones(36))
        solution, residual = bicgstab(matrix, cn.ones(36), cn.zeros(36), iterations=40)
        np.testing.assert_allclose(solution.to_numpy(), reference, atol=1e-6)


class TestPetscBaseline:
    def _system(self, grid=6, gpus=4):
        model = PetscMachineModel(machine=MachineConfig(num_gpus=gpus))
        matrix = poisson_2d_aij(grid, model)
        rows = matrix.shape[0]
        dense = np.zeros(matrix.shape)
        for row in range(rows):
            for position in range(matrix.indptr[row], matrix.indptr[row + 1]):
                dense[row, matrix.indices[position]] = matrix.data[position]
        return model, matrix, dense

    def test_vec_kernels(self):
        model = PetscMachineModel(machine=MachineConfig(num_gpus=2))
        x = Vec(np.arange(8.0), model)
        y = Vec(np.ones(8), model)
        y.axpy(2.0, x)
        np.testing.assert_allclose(y.data, 1.0 + 2.0 * np.arange(8))
        y.scale(0.5)
        np.testing.assert_allclose(y.data, 0.5 * (1.0 + 2.0 * np.arange(8)))
        assert x.dot(x) == pytest.approx(float(np.arange(8) @ np.arange(8)))
        assert x.norm() == pytest.approx(np.linalg.norm(np.arange(8)))
        w = x.duplicate()
        w.waxpy(3.0, x, y)
        np.testing.assert_allclose(w.data, 3.0 * x.data + y.data)
        assert model.seconds > 0.0

    def test_mdot_single_pass(self):
        model = PetscMachineModel(machine=MachineConfig(num_gpus=2))
        a = Vec(np.arange(8.0), model)
        b = Vec(np.ones(8), model)
        ab, aa = a.mdot(b, a)
        assert ab == pytest.approx(float(np.arange(8).sum()))
        assert aa == pytest.approx(float(np.arange(8) @ np.arange(8)))

    def test_mat_mult_matches_dense(self):
        model, matrix, dense = self._system()
        x = Vec(np.linspace(0, 1, dense.shape[0]), model)
        y = Vec.create(dense.shape[0], model)
        matrix.mult(x, y)
        np.testing.assert_allclose(y.data, dense @ x.data, atol=1e-12)

    def test_ksp_cg_and_bicgstab_converge(self):
        model, matrix, dense = self._system()
        reference = np.linalg.solve(dense, np.ones(dense.shape[0]))
        ksp = KSP(matrix, model)
        rhs = Vec.create(dense.shape[0], model, 1.0)
        cg_result = ksp.cg(rhs, Vec.create(dense.shape[0], model), 60)
        np.testing.assert_allclose(cg_result.solution.data, reference, atol=1e-8)
        assert cg_result.seconds > 0.0
        bcgs_result = ksp.bicgstab(rhs, Vec.create(dense.shape[0], model), 60)
        np.testing.assert_allclose(bcgs_result.solution.data, reference, atol=1e-6)

    def test_more_gpus_is_not_slower_per_iteration(self):
        """Weak-scaled PETSc CG per-iteration time stays roughly flat."""
        times = []
        for gpus in (1, 4):
            model = PetscMachineModel(machine=MachineConfig(num_gpus=gpus))
            matrix = poisson_2d_aij(8 * int(np.sqrt(gpus)), model)
            rows = matrix.shape[0]
            ksp = KSP(matrix, model)
            result = ksp.cg(Vec.create(rows, model, 1.0), Vec.create(rows, model), 5)
            times.append(result.seconds / max(1, result.iterations))
        assert times[1] < times[0] * 3.0
