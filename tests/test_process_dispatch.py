"""Shared-memory multiprocess dispatch (``REPRO_DISPATCH_BACKEND``).

Acceptance bar: the ``process`` backend is bit-identical to the
``thread`` backend — buffers, checksums AND simulated seconds — for
every {backend} × ``REPRO_WORKERS`` {1,4} × ``REPRO_POINT_WORKERS``
{1,4} combination, asserted under the differential kernel backend with
the dispatch thresholds forced to zero so the pools are exercised on
tiny problems.  Alongside the end-to-end hammer, this file unit-tests
the shared-memory arena, the worker-process pool protocol, the
config-reload pool invalidation and the graceful thread fallback for
region fields that predate the backend flip.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import scaled_machine
from repro.frontend.cunumeric.array import ndarray as cn_ndarray
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.runtime.procpool import shutdown_process_pool
from repro.runtime.shm import SharedArena, attach_view


@pytest.fixture(autouse=True)
def _reload_flags_after():
    yield
    config.reload_flags()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    """Zero both dispatch thresholds so tiny launches hit the pools."""
    import repro.runtime.executor as executor_module
    import repro.runtime.scheduler as scheduler_module

    monkeypatch.setattr(executor_module, "MIN_POINT_DISPATCH_VOLUME", 0)
    monkeypatch.setattr(scheduler_module, "MIN_DISPATCH_VOLUME", 0)


# ----------------------------------------------------------------------
# Configuration.
# ----------------------------------------------------------------------
class TestDispatchConfig:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH_BACKEND", raising=False)
        config.reload_flags()
        assert config.dispatch_backend() == "thread"

    def test_explicit_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        config.reload_flags()
        assert config.dispatch_backend() == "process"

    def test_junk_degrades_to_thread(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "gpu")
        config.reload_flags()
        assert config.dispatch_backend() == "thread"

    def test_segment_bytes_default_and_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_SEGMENT_BYTES", raising=False)
        config.reload_flags()
        assert config.shm_segment_bytes() == config.DEFAULT_SHM_SEGMENT_BYTES
        monkeypatch.setenv("REPRO_SHM_SEGMENT_BYTES", "1024")
        config.reload_flags()
        assert config.shm_segment_bytes() == 4096
        monkeypatch.setenv("REPRO_SHM_SEGMENT_BYTES", "junk")
        config.reload_flags()
        assert config.shm_segment_bytes() == config.DEFAULT_SHM_SEGMENT_BYTES


# ----------------------------------------------------------------------
# The shared-memory arena.
# ----------------------------------------------------------------------
class TestSharedArena:
    def test_allocate_zeroed_and_descriptor_roundtrip(self):
        arena = SharedArena(segment_bytes=4096)
        try:
            array, descriptor = arena.allocate((16,), np.float64)
            assert np.array_equal(array, np.zeros(16))
            array[:] = np.arange(16.0)
            # Attaching through the descriptor maps the same pages.
            view = attach_view(descriptor)
            assert np.array_equal(view, np.arange(16.0))
            view[0] = 41.0
            assert array[0] == 41.0
        finally:
            del array, view
            arena.close()

    def test_blocks_share_segments_and_release_recycles(self):
        arena = SharedArena(segment_bytes=4096)
        try:
            a, da = arena.allocate((8,), np.float64)
            b, db = arena.allocate((8,), np.float64)
            assert da.segment == db.segment
            assert da.offset != db.offset
            assert arena.segment_count == 1
            a[:] = 7.0
            del a
            arena.release(da)
            # The freed block is reused (first fit) and comes back zeroed.
            c, dc = arena.allocate((8,), np.float64)
            assert dc.segment == da.segment and dc.offset == da.offset
            assert np.array_equal(c, np.zeros(8))
        finally:
            arena.close()

    def test_oversized_allocation_gets_own_segment(self):
        arena = SharedArena(segment_bytes=4096)
        try:
            _small, _ = arena.allocate((8,), np.float64)
            big, dbig = arena.allocate((4096,), np.float64)
            assert big.nbytes > 4096
            assert arena.segment_count == 2
            assert dbig.offset == 0
        finally:
            del big
            arena.close()

    def test_release_coalesces_adjacent_holes(self):
        arena = SharedArena(segment_bytes=4096)
        try:
            arrays = [arena.allocate((8,), np.float64) for _ in range(3)]
            descriptors = [d for _a, d in arrays]
            arrays = [a for a, _d in arrays]
            del arrays
            for descriptor in descriptors:
                arena.release(descriptor)
            # All three 64-byte blocks coalesced with the tail hole: a
            # fresh 3-block allocation fits at the segment start again.
            merged, dm = arena.allocate((24,), np.float64)
            assert dm.offset == 0
            del merged
        finally:
            arena.close()

    def test_close_unlinks_dev_shm(self):
        arena = SharedArena(segment_bytes=4096)
        array, descriptor = arena.allocate((8,), np.float64)
        name = descriptor.segment
        if os.path.isdir("/dev/shm"):
            assert os.path.exists(f"/dev/shm/{name}")
        del array
        arena.close()
        assert arena.closed
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")
        # Idempotent.
        arena.close()

    def test_closed_arena_refuses_allocation(self):
        arena = SharedArena(segment_bytes=4096)
        arena.close()
        with pytest.raises(RuntimeError):
            arena.allocate((8,), np.float64)


# ----------------------------------------------------------------------
# Shared-memory region fields.
# ----------------------------------------------------------------------
class TestShmRegionFields:
    def _manager_and_store(self, monkeypatch, backend):
        from repro.ir.store import StoreManager
        from repro.runtime.region import RegionManager

        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", backend)
        config.reload_flags()
        manager = RegionManager()
        store = StoreManager().create_store((32,), name="field")
        return manager, store

    def test_thread_backend_fields_are_private(self, monkeypatch):
        manager, store = self._manager_and_store(monkeypatch, "thread")
        field = manager.field(store)
        assert field.shm_descriptor is None
        assert manager.arena is None

    def test_process_backend_fields_are_shared(self, monkeypatch):
        manager, store = self._manager_and_store(monkeypatch, "process")
        field = manager.field(store)
        assert field.shm_descriptor is not None
        assert manager.arena is not None
        field.data[:] = 3.5
        view = attach_view(field.shm_descriptor)
        assert np.array_equal(view, np.full(32, 3.5))
        del view
        manager.close_arena()

    def test_attach_and_release_recycle_blocks(self, monkeypatch):
        manager, store = self._manager_and_store(monkeypatch, "process")
        field = manager.field(store)
        first = field.shm_descriptor
        attached = manager.attach(store, np.arange(32.0))
        assert attached.shm_descriptor is not None
        assert np.array_equal(attached.data, np.arange(32.0))
        # The replaced field returned its block; releasing the store
        # returns the new one too.
        manager.release(store)
        assert attached.shm_descriptor is None
        assert first is not None
        manager.close_arena()

    def test_finalizer_unlinks_on_gc(self, monkeypatch):
        import gc

        manager, store = self._manager_and_store(monkeypatch, "process")
        field = manager.field(store)
        name = field.shm_descriptor.segment
        if os.path.isdir("/dev/shm"):
            assert os.path.exists(f"/dev/shm/{name}")
        del manager, field
        gc.collect()
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")


# ----------------------------------------------------------------------
# Pool invalidation on config reloads (satellite).
# ----------------------------------------------------------------------
class TestReloadInvalidation:
    def test_thread_pool_resizes_after_reload(self, monkeypatch):
        from repro.runtime.pool import worker_pool

        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        config.reload_flags()
        pool = worker_pool()
        assert pool._max_workers == 2
        monkeypatch.setenv("REPRO_WORKERS", "3")
        config.reload_flags()
        resized = worker_pool()
        assert resized._max_workers == 3
        assert resized is not pool

    def test_reload_keeps_a_correctly_sized_pool(self, monkeypatch):
        from repro.runtime.pool import worker_pool

        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        config.reload_flags()
        pool = worker_pool()
        # Reload without changing the sizing flags: no churn.
        config.reload_flags()
        assert worker_pool() is pool

    def test_process_pool_retired_when_backend_flips(self, monkeypatch):
        import repro.runtime.procpool as procpool

        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "2")
        config.reload_flags()
        pool = procpool.process_pool()
        assert pool.size == 2
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "thread")
        config.reload_flags()
        assert pool.closed
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "3")
        config.reload_flags()
        fresh = procpool.process_pool()
        assert fresh is not pool
        assert fresh.size == 3
        shutdown_process_pool()


# ----------------------------------------------------------------------
# The worker-pool protocol.
# ----------------------------------------------------------------------
class TestProcessPoolProtocol:
    def test_unknown_kernel_without_spec_raises_and_pool_survives(self, monkeypatch):
        import repro.runtime.procpool as procpool

        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "1")
        config.reload_flags()
        pool = procpool.ProcessWorkerPool(1)
        try:
            request = procpool.ChunkRequest(
                kernel_id=999999,
                spec=None,
                scalars={},
                buffers=(),
                start=0,
                stop=0,
            )
            # Bypass run_chunks' spec fill-in to exercise the worker's
            # error path: it must reply, not die.
            pool._shipped[0].add(999999)
            with pytest.raises(RuntimeError, match="no executor"):
                pool.run_chunks(999999, None, [request])
            assert 999999 not in pool._shipped[0]
            # The pipe protocol stayed in sync: the worker still answers.
            pool._shipped[0].add(999999)
            with pytest.raises(RuntimeError, match="no executor"):
                pool.run_chunks(999999, None, [request])
        finally:
            pool.shutdown()

    def test_dead_worker_breaks_pool_and_dispatch_falls_back(self, monkeypatch):
        """A killed worker tears the pool down instead of wedging it.

        ``run_chunks`` must surface :class:`ProcessPoolBrokenError` (not
        a raw ``EOFError``), the pool must mark itself closed so
        :func:`process_pool` rebuilds it, and the executor's routing
        must degrade the launch to the thread substrate.
        """
        import repro.runtime.procpool as procpool

        pool = procpool.ProcessWorkerPool(1)
        try:
            pool._processes[0].terminate()
            pool._processes[0].join(timeout=5.0)
            request = procpool.ChunkRequest(
                kernel_id=1, spec=None, scalars={}, buffers=(), start=0, stop=0
            )
            pool._shipped[0].add(1)
            with pytest.raises(procpool.ProcessPoolBrokenError):
                pool.run_chunks(1, None, [request])
            assert pool.closed
            # A closed pool refuses further work immediately.
            with pytest.raises(procpool.ProcessPoolBrokenError):
                pool.run_chunks(1, None, [request])
        finally:
            pool.shutdown()

    def test_kernel_spec_id_is_stable_and_unique(self):
        from repro.runtime.procpool import kernel_spec_id

        class Holder:
            pass

        a, b = Holder(), Holder()
        first = kernel_spec_id(a)
        assert kernel_spec_id(a) == first
        assert kernel_spec_id(b) != first


# ----------------------------------------------------------------------
# End-to-end parity: the differential hammer matrix (satellite).
# ----------------------------------------------------------------------
BACKENDS = ("thread", "process")
COMBOS = [(1, 1), (4, 1), (1, 4), (4, 4)]


def _run_app(app_name, backend, point_workers, workers, monkeypatch, iterations, **kwargs):
    monkeypatch.setenv("REPRO_DISPATCH_BACKEND", backend)
    monkeypatch.setenv("REPRO_POINT_WORKERS", str(point_workers))
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "differential")
    config.reload_flags()
    context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
    set_context(context)
    try:
        app = build_application(app_name, context=context, **kwargs)
        app.run(iterations)
        checksum = app.checksum()
        state = {
            name: value.to_numpy()
            for name, value in vars(app).items()
            if isinstance(value, cn_ndarray)
        }
    finally:
        set_context(None)
    return context, state, checksum


class TestProcessParity:
    """The {backend} × workers × point-workers differential hammer.

    CG (compiled kernels with reductions), Jacobi (opaque GEMV, which
    always stays on the thread substrate) and Black-Scholes (elementwise
    chains, the batching path) must be bit-identical — buffers,
    checksums and simulated seconds — to the thread/1/1 baseline for
    every combination, with both kernel backends cross-checked on every
    invocation by the differential executor.
    """

    APPS = [
        ("cg", dict(grid_points_per_gpu=12), 5),
        ("jacobi", dict(rows_per_gpu=32), 6),
        ("black-scholes", dict(elements_per_gpu=128), 6),
    ]

    @pytest.mark.parametrize("app_name,kwargs,iterations", APPS, ids=[a[0] for a in APPS])
    def test_matrix_bit_identical(self, app_name, kwargs, iterations, monkeypatch):
        ctx_base, state_base, checksum_base = _run_app(
            app_name, "thread", 1, 1, monkeypatch, iterations, **kwargs
        )
        for backend in BACKENDS:
            for point_workers, workers in COMBOS:
                if backend == "thread" and (point_workers, workers) == (1, 1):
                    continue
                ctx, state, checksum = _run_app(
                    app_name, backend, point_workers, workers,
                    monkeypatch, iterations, **kwargs,
                )
                label = f"{backend} point={point_workers} workers={workers}"
                assert checksum == checksum_base, label
                assert set(state) == set(state_base), label
                for name in state_base:
                    assert np.array_equal(state[name], state_base[name]), (label, name)
                assert (
                    ctx.profiler.iteration_seconds()
                    == ctx_base.profiler.iteration_seconds()
                ), label
                assert (
                    ctx.legion.simulated_seconds == ctx_base.legion.simulated_seconds
                ), label
                if backend == "process" and point_workers > 1:
                    assert ctx.profiler.point_launches > 0, label
                    # Compiled chunks — and, since the chunk-level
                    # operator registry, Jacobi's chunked opaque GEMV —
                    # ride the process substrate.
                    assert ctx.profiler.point_process_chunks > 0, label
        shutdown_process_pool()

    def test_fields_allocated_before_flip_fall_back_to_threads(self, monkeypatch):
        """Graceful degradation: pre-existing private fields stay threaded.

        Region fields allocated under the thread backend carry no
        shared-memory descriptor; flipping to ``process`` mid-run must
        keep dispatching their launches on the thread pool (bit-for-bit
        as before) rather than failing to ship them.
        """
        monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "thread")
        monkeypatch.setenv("REPRO_POINT_WORKERS", "4")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_TRACE", "0")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "codegen")
        config.reload_flags()
        context = RuntimeContext(num_gpus=4, fusion=True, machine=scaled_machine(4, 1e-4))
        set_context(context)
        try:
            app = build_application("black-scholes", context=context, elements_per_gpu=128)
            app.run(2)
            assert np.isfinite(app.checksum())
            monkeypatch.setenv("REPRO_DISPATCH_BACKEND", "process")
            config.reload_flags()
            app.run(2)
            assert np.isfinite(app.checksum())
            assert context.profiler.point_process_chunks == 0
            assert context.profiler.point_thread_chunks > 0
        finally:
            set_context(None)
        shutdown_process_pool()
