"""Tests for the cuPyNumeric-like frontend against plain NumPy.

Every test runs under both the fused and unfused configurations (the
``any_context`` fixture), so correctness of the fusion pipeline is checked
on every frontend operation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.frontend.cunumeric as cn
from repro.frontend.cunumeric import linalg
from repro.frontend.legate.context import RuntimeContext, set_context


class TestCreation:
    def test_zeros_ones_full(self, any_context):
        np.testing.assert_allclose(cn.zeros(17).to_numpy(), np.zeros(17))
        np.testing.assert_allclose(cn.ones((4, 5)).to_numpy(), np.ones((4, 5)))
        np.testing.assert_allclose(cn.full(9, 2.5).to_numpy(), np.full(9, 2.5))

    def test_array_and_arange(self, any_context):
        data = np.linspace(0, 1, 13)
        np.testing.assert_allclose(cn.array(data).to_numpy(), data)
        np.testing.assert_allclose(cn.arange(11).to_numpy(), np.arange(11.0))

    def test_zeros_like(self, any_context):
        template = cn.ones((3, 6))
        assert cn.zeros_like(template).shape == (3, 6)

    def test_random(self, any_context):
        cn.random.seed(5)
        values = cn.random.rand(32).to_numpy()
        assert values.shape == (32,)
        assert ((values >= 0) & (values < 1)).all()
        uniform = cn.random.uniform(2.0, 3.0, 16).to_numpy()
        assert ((uniform >= 2.0) & (uniform < 3.0)).all()


class TestElementwise:
    def test_binary_array_ops(self, any_context):
        a_host = np.linspace(1, 2, 24)
        b_host = np.linspace(3, 5, 24)
        a, b = cn.array(a_host), cn.array(b_host)
        np.testing.assert_allclose((a + b).to_numpy(), a_host + b_host)
        np.testing.assert_allclose((a - b).to_numpy(), a_host - b_host)
        np.testing.assert_allclose((a * b).to_numpy(), a_host * b_host)
        np.testing.assert_allclose((a / b).to_numpy(), a_host / b_host)
        np.testing.assert_allclose((a ** 2).to_numpy(), a_host ** 2)

    def test_scalar_ops_and_reversed(self, any_context):
        a_host = np.linspace(1, 2, 10)
        a = cn.array(a_host)
        np.testing.assert_allclose((a + 1.5).to_numpy(), a_host + 1.5)
        np.testing.assert_allclose((2.0 * a).to_numpy(), 2.0 * a_host)
        np.testing.assert_allclose((1.0 - a).to_numpy(), 1.0 - a_host)
        np.testing.assert_allclose((1.0 / a).to_numpy(), 1.0 / a_host)
        np.testing.assert_allclose((-a).to_numpy(), -a_host)

    def test_inplace_ops(self, any_context):
        a_host = np.linspace(1, 2, 12)
        a = cn.array(a_host)
        a += 1.0
        a *= 2.0
        np.testing.assert_allclose(a.to_numpy(), (a_host + 1.0) * 2.0)
        b = cn.array(a_host)
        b -= cn.ones(12)
        np.testing.assert_allclose(b.to_numpy(), a_host - 1.0)

    def test_unary_functions(self, any_context):
        a_host = np.linspace(0.1, 2.0, 16)
        a = cn.array(a_host)
        np.testing.assert_allclose(cn.sqrt(a).to_numpy(), np.sqrt(a_host))
        np.testing.assert_allclose(cn.exp(a).to_numpy(), np.exp(a_host))
        np.testing.assert_allclose(cn.log(a).to_numpy(), np.log(a_host))
        np.testing.assert_allclose(cn.absolute(-a).to_numpy(), a_host)
        np.testing.assert_allclose(cn.sin(a).to_numpy(), np.sin(a_host))
        np.testing.assert_allclose(cn.cos(a).to_numpy(), np.cos(a_host))
        np.testing.assert_allclose(cn.tanh(a).to_numpy(), np.tanh(a_host))

    def test_maximum_minimum_where(self, any_context):
        a_host = np.linspace(-1, 1, 20)
        b_host = np.linspace(1, -1, 20)
        a, b = cn.array(a_host), cn.array(b_host)
        np.testing.assert_allclose(cn.maximum(a, b).to_numpy(), np.maximum(a_host, b_host))
        np.testing.assert_allclose(cn.minimum(a, 0.0).to_numpy(), np.minimum(a_host, 0.0))
        selected = cn.where(a > b, a, b)
        np.testing.assert_allclose(selected.to_numpy(), np.where(a_host > b_host, a_host, b_host))

    def test_axpy(self, any_context):
        x_host = np.linspace(0, 1, 16)
        y_host = np.linspace(1, 2, 16)
        result = cn.axpy(2.5, cn.array(x_host), cn.array(y_host))
        np.testing.assert_allclose(result.to_numpy(), 2.5 * x_host + y_host)

    def test_shape_mismatch_rejected(self, any_context):
        with pytest.raises(ValueError):
            cn.ones(4) + cn.ones(5)


class TestReductions:
    def test_sum_max_min_dot(self, any_context):
        a_host = np.linspace(-2, 3, 40)
        b_host = np.linspace(1, 2, 40)
        a, b = cn.array(a_host), cn.array(b_host)
        assert float(a.sum()) == pytest.approx(a_host.sum())
        assert float(a.max()) == pytest.approx(a_host.max())
        assert float(a.min()) == pytest.approx(a_host.min())
        assert float(a.dot(b)) == pytest.approx(a_host @ b_host)
        assert float(cn.sum(a)) == pytest.approx(a_host.sum())
        assert float(cn.dot(a, b)) == pytest.approx(a_host @ b_host)

    def test_norm(self, any_context):
        a_host = np.linspace(0, 1, 25)
        assert linalg.norm(cn.array(a_host)) == pytest.approx(np.linalg.norm(a_host))

    def test_item_requires_scalar(self, any_context):
        with pytest.raises(ValueError):
            cn.ones(4).item()


class TestViewsAndSlicing:
    def test_view_reads(self, any_context):
        data = np.arange(36, dtype=np.float64).reshape(6, 6)
        grid = cn.array(data)
        np.testing.assert_allclose(grid[1:-1, 1:-1].to_numpy(), data[1:-1, 1:-1])
        np.testing.assert_allclose(grid[0:-2, 2:].to_numpy(), data[0:-2, 2:])
        np.testing.assert_allclose(grid[2:].to_numpy(), data[2:])

    def test_view_write_back(self, any_context):
        data = np.arange(16, dtype=np.float64).reshape(4, 4)
        grid = cn.array(data)
        grid[1:-1, 1:-1] = cn.full((2, 2), 9.0)
        expected = data.copy()
        expected[1:-1, 1:-1] = 9.0
        np.testing.assert_allclose(grid.to_numpy(), expected)

    def test_scalar_fill_of_view(self, any_context):
        grid = cn.zeros((5, 5))
        grid[0:1, :] = 3.0
        expected = np.zeros((5, 5))
        expected[0, :] = 3.0
        np.testing.assert_allclose(grid.to_numpy(), expected)

    def test_stencil_example(self, any_context):
        """The paper's Figure 1 program produces the NumPy result."""
        n = 8
        data = np.arange((n + 2) * (n + 2), dtype=np.float64).reshape(n + 2, n + 2)
        grid = cn.array(data)
        center = grid[1:-1, 1:-1]
        north = grid[0:-2, 1:-1]
        east = grid[1:-1, 2:]
        west = grid[1:-1, 0:-2]
        south = grid[2:, 1:-1]
        for _ in range(2):
            avg = center + north + east + west + south
            work = 0.2 * avg
            center[:] = work
        reference = data.copy()
        for _ in range(2):
            avg = (
                reference[1:-1, 1:-1]
                + reference[0:-2, 1:-1]
                + reference[1:-1, 2:]
                + reference[1:-1, 0:-2]
                + reference[2:, 1:-1]
            )
            reference[1:-1, 1:-1] = 0.2 * avg
        np.testing.assert_allclose(grid.to_numpy(), reference)

    def test_unsupported_indexing(self, any_context):
        grid = cn.zeros((4, 4))
        with pytest.raises(NotImplementedError):
            grid[::2]
        with pytest.raises(NotImplementedError):
            grid[1]
        with pytest.raises(IndexError):
            grid[0:1, 0:1, 0:1]


class TestMatvec:
    def test_matches_numpy(self, any_context):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((12, 12))
        vector = rng.standard_normal(12)
        result = linalg.matvec(cn.array(matrix), cn.array(vector))
        np.testing.assert_allclose(result.to_numpy(), matrix @ vector, rtol=1e-12)

    def test_shape_validation(self, any_context):
        with pytest.raises(ValueError):
            linalg.matvec(cn.ones((4, 4)), cn.ones(5))
        with pytest.raises(ValueError):
            linalg.matvec(cn.ones(4), cn.ones(4))


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.floats(min_value=-100, max_value=100), min_size=4, max_size=40),
    scalar=st.floats(min_value=-10, max_value=10),
)
def test_property_expression_chain_matches_numpy(values, scalar):
    """Property: random element-wise expression chains match NumPy under fusion."""
    host = np.asarray(values, dtype=np.float64)
    context = RuntimeContext(num_gpus=2, fusion=True)
    set_context(context)
    try:
        a = cn.array(host)
        result = (a * scalar + 1.0) - cn.maximum(a, 0.0) * 0.5
        expected = (host * scalar + 1.0) - np.maximum(host, 0.0) * 0.5
        np.testing.assert_allclose(result.to_numpy(), expected, rtol=1e-12, atol=1e-12)
    finally:
        set_context(None)
