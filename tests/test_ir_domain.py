"""Unit and property tests for points, rectangles and domains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.domain import (
    Domain,
    Rect,
    broadcast_shapes,
    factor_domain,
    point_add,
    point_mul,
    point_sub,
    shape_volume,
    tile_shape_for,
)


class TestRect:
    def test_from_shape(self):
        rect = Rect.from_shape((3, 4))
        assert rect.lo == (0, 0)
        assert rect.hi == (3, 4)
        assert rect.volume == 12
        assert not rect.empty

    def test_empty_rect(self):
        rect = Rect((2, 2), (2, 5))
        assert rect.empty
        assert rect.volume == 0
        assert list(rect.points()) == []

    def test_contains_point(self):
        rect = Rect((1, 1), (3, 3))
        assert rect.contains_point((1, 1))
        assert rect.contains_point((2, 2))
        assert not rect.contains_point((3, 3))
        assert not rect.contains_point((0, 1))

    def test_contains_rect(self):
        outer = Rect((0, 0), (4, 4))
        inner = Rect((1, 1), (3, 3))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(Rect((2, 2), (2, 2)))  # empty rect

    def test_intersection(self):
        a = Rect((0, 0), (3, 3))
        b = Rect((2, 1), (5, 2))
        overlap = a.intersection(b)
        assert overlap.lo == (2, 1)
        assert overlap.hi == (3, 2)
        assert a.overlaps(b)

    def test_disjoint_intersection(self):
        a = Rect((0,), (2,))
        b = Rect((2,), (4,))
        assert not a.overlaps(b)
        assert a.intersection(b).empty

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Rect((0,), (1, 1))
        with pytest.raises(ValueError):
            Rect((0,), (2,)).intersection(Rect((0, 0), (1, 1)))

    def test_points_enumeration(self):
        rect = Rect((0, 0), (2, 2))
        assert sorted(rect.points()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_slices(self):
        import numpy as np

        data = np.arange(16).reshape(4, 4)
        rect = Rect((1, 2), (3, 4))
        assert data[rect.slices()].tolist() == [[6, 7], [10, 11]]

    def test_translate(self):
        rect = Rect((0, 0), (2, 2)).translate((3, 1))
        assert rect.lo == (3, 1)
        assert rect.hi == (5, 3)


class TestDomain:
    def test_basic(self):
        domain = Domain((2, 3))
        assert domain.dim == 2
        assert domain.volume == 6
        assert len(list(domain.points())) == 6
        assert domain.contains((1, 2))
        assert not domain.contains((2, 0))

    def test_empty(self):
        assert Domain((0, 3)).empty
        assert not Domain((1,)).empty

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Domain((-1, 2))

    def test_equality_and_hash(self):
        assert Domain((4,)) == Domain((4,))
        assert Domain((4,)) != Domain((2, 2))
        assert hash(Domain((4,))) == hash(Domain((4,)))


class TestFactorDomain:
    def test_one_dimensional(self):
        assert factor_domain(6, 1).shape == (6,)

    def test_two_dimensional_square(self):
        assert factor_domain(16, 2).shape == (4, 4)

    def test_two_dimensional_rectangular(self):
        assert factor_domain(8, 2).shape == (4, 2)

    def test_prime(self):
        assert factor_domain(7, 2).shape == (7, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor_domain(0, 1)
        with pytest.raises(ValueError):
            factor_domain(4, 0)

    @given(st.integers(min_value=1, max_value=512), st.integers(min_value=1, max_value=3))
    def test_volume_preserved(self, count, dim):
        assert factor_domain(count, dim).volume == count


class TestTileShape:
    def test_even_division(self):
        assert tile_shape_for((8, 8), Domain((2, 4))) == (4, 2)

    def test_uneven_division(self):
        assert tile_shape_for((9,), Domain((4,))) == (3,)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            tile_shape_for((8, 8), Domain((4,)))

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=16),
    )
    def test_tiles_cover_store(self, extent, parts):
        tile = tile_shape_for((extent,), Domain((parts,)))[0]
        # Tiles cover the store, and the tile size is the smallest that does.
        assert tile * parts >= extent
        assert (tile - 1) * parts < extent


class TestHelpers:
    def test_point_arithmetic(self):
        assert point_add((1, 2), (3, 4)) == (4, 6)
        assert point_sub((3, 4), (1, 2)) == (2, 2)
        assert point_mul((2, 3), (4, 5)) == (8, 15)
        with pytest.raises(ValueError):
            point_add((1,), (1, 2))

    def test_shape_volume(self):
        assert shape_volume(()) == 1
        assert shape_volume((3, 4)) == 12

    def test_broadcast_shapes(self):
        assert broadcast_shapes((4, 1), (1, 5)) == (4, 5)
        assert broadcast_shapes((3,), (3,)) == (3,)
        with pytest.raises(ValueError):
            broadcast_shapes((2,), (3,))


@settings(max_examples=60)
@given(
    lo=st.tuples(st.integers(0, 10), st.integers(0, 10)),
    extent_a=st.tuples(st.integers(0, 10), st.integers(0, 10)),
    lo_b=st.tuples(st.integers(0, 10), st.integers(0, 10)),
    extent_b=st.tuples(st.integers(0, 10), st.integers(0, 10)),
)
def test_intersection_commutative_and_contained(lo, extent_a, lo_b, extent_b):
    """Property: intersection is commutative and contained in both operands."""
    a = Rect(lo, tuple(l + e for l, e in zip(lo, extent_a)))
    b = Rect(lo_b, tuple(l + e for l, e in zip(lo_b, extent_b)))
    ab = a.intersection(b)
    ba = b.intersection(a)
    assert ab.volume == ba.volume
    if not ab.empty:
        assert a.contains_rect(ab)
        assert b.contains_rect(ab)
    # Volume of the intersection never exceeds either operand.
    assert ab.volume <= min(a.volume, b.volume)
