"""Full application example: the TorchSWE-style shallow-water solver.

Runs the naturally-written solver, the developer-optimised ("manually
fused") variant and the Diffuse-fused execution, and prints the task
counts and modelled throughputs side by side — a miniature version of the
paper's Figure 12c experiment, plus a look inside the fused kernels that
Diffuse generated.

Run with:  python examples/shallow_water.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import ManuallyFusedShallowWater, ShallowWater
from repro.experiments.harness import scaled_machine
from repro.frontend.legate.context import RuntimeContext, set_context

NUM_GPUS = 4
POINTS_PER_GPU = 48
ITERATIONS = 3
WARMUP = 3
BANDWIDTH_SCALE = 1e-5


def run(app_cls, fusion: bool):
    """Run one solver variant and return (checksum, context)."""
    machine = scaled_machine(NUM_GPUS, BANDWIDTH_SCALE)
    context = RuntimeContext(num_gpus=NUM_GPUS, fusion=fusion, machine=machine)
    set_context(context)
    try:
        app = app_cls(points_per_gpu=POINTS_PER_GPU, context=context)
        app.run(WARMUP + ITERATIONS)
        return app.checksum(), context
    finally:
        set_context(None)


def main() -> None:
    natural_fused, ctx_fused = run(ShallowWater, fusion=True)
    natural_plain, ctx_plain = run(ShallowWater, fusion=False)
    manual_plain, ctx_manual = run(ManuallyFusedShallowWater, fusion=False)

    assert np.isclose(natural_fused, natural_plain)

    def describe(label, context):
        profiler = context.profiler
        print(f"  {label:<22} tasks/iter {profiler.tasks_per_iteration(WARMUP, fused_view=False):7.1f}"
              f"  launched/iter {profiler.tasks_per_iteration(WARMUP, fused_view=True):6.1f}"
              f"  throughput {profiler.throughput(skip_warmup=WARMUP):8.2f} it/s")

    print(f"TorchSWE-style shallow water, {NUM_GPUS} simulated GPUs, "
          f"{POINTS_PER_GPU}^2 cells per GPU")
    describe("unfused (natural)", ctx_plain)
    describe("manually vectorised", ctx_manual)
    describe("Diffuse (fused)", ctx_fused)

    fused_tp = ctx_fused.profiler.throughput(skip_warmup=WARMUP)
    plain_tp = ctx_plain.profiler.throughput(skip_warmup=WARMUP)
    manual_tp = ctx_manual.profiler.throughput(skip_warmup=WARMUP)
    print(f"\n  Diffuse speedup over the natural port   : {fused_tp / plain_tp:.2f}x")
    print(f"  Diffuse speedup over the manual variant : {fused_tp / manual_tp:.2f}x")

    # Peek at one of the fused kernels Diffuse compiled.
    kernels = list(ctx_fused.diffuse.compiler._cache.values())
    if kernels:
        biggest = max(kernels, key=lambda kernel: kernel.fused_count)
        print(f"\n  largest fused kernel combines {biggest.fused_count} library tasks "
              f"into {biggest.launches} loop(s);")
        print(f"  it reads/writes {len(biggest.function.buffer_params)} distinct distributed views.")


if __name__ == "__main__":
    main()
