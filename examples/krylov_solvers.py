"""Composing cuPyNumeric and Legate Sparse: Krylov solvers under Diffuse.

Solves a 2-D Poisson problem with naturally-written CG and BiCGSTAB (the
paper's Figure 11 workloads), comparing three configurations:

* Unfused  — the task stream is forwarded to the runtime unchanged,
* Fused    — Diffuse fuses the AXPY/dot-product chains around the SpMV,
* PETSc    — the explicitly-parallel, hand-fused baseline library.

Run with:  python examples/krylov_solvers.py
"""

from __future__ import annotations

import numpy as np

import repro.frontend.cunumeric as cn
from repro.baselines.petsc import KSP, PetscMachineModel, Vec, poisson_2d_aij
from repro.experiments.harness import scaled_machine
from repro.frontend.legate import runtime_context
from repro.frontend.sparse import poisson_2d
from repro.frontend.sparse.linalg import bicgstab, cg

GRID = 64            # 64x64 grid -> 4096 unknowns
ITERATIONS = 20
NUM_GPUS = 4
BANDWIDTH_SCALE = 1e-5


def run_diffuse(solver_name: str, fusion: bool):
    """Run a naturally-written solver through the Diffuse stack."""
    machine = scaled_machine(NUM_GPUS, BANDWIDTH_SCALE)
    with runtime_context(num_gpus=NUM_GPUS, fusion=fusion, machine=machine) as context:
        matrix = poisson_2d(GRID)
        rhs = cn.ones(GRID * GRID)
        x0 = cn.zeros(GRID * GRID)
        solver = cg if solver_name == "cg" else bicgstab
        solution, residual = solver(
            matrix, rhs, x0, ITERATIONS,
            on_iteration=lambda i: context.begin_iteration(),
        )
        context.flush()
        throughput = context.profiler.throughput(skip_warmup=2)
        return solution.to_numpy(), residual, throughput


def run_petsc(solver_name: str):
    """Run the PETSc-like baseline on the same problem."""
    model = PetscMachineModel(machine=scaled_machine(NUM_GPUS, BANDWIDTH_SCALE))
    matrix = poisson_2d_aij(GRID, model)
    rhs = Vec.create(GRID * GRID, model, 1.0)
    x0 = Vec.create(GRID * GRID, model)
    ksp = KSP(matrix, model)
    result = ksp.cg(rhs, x0, ITERATIONS) if solver_name == "cg" else ksp.bicgstab(rhs, x0, ITERATIONS)
    throughput = result.iterations / result.seconds if result.seconds else 0.0
    return result.solution.to_numpy(), result.residual_norm, throughput


def main() -> None:
    for solver_name in ("cg", "bicgstab"):
        print(f"=== {solver_name.upper()} on a {GRID}x{GRID} Poisson problem, "
              f"{NUM_GPUS} simulated GPUs ===")
        fused_x, fused_res, fused_tp = run_diffuse(solver_name, fusion=True)
        plain_x, plain_res, plain_tp = run_diffuse(solver_name, fusion=False)
        petsc_x, petsc_res, petsc_tp = run_petsc(solver_name)
        assert np.allclose(fused_x, plain_x, atol=1e-8)
        print(f"  residual (fused)  : {np.sqrt(max(fused_res, 0.0)):.3e}")
        print(f"  throughput unfused: {plain_tp:8.2f} it/s")
        print(f"  throughput fused  : {fused_tp:8.2f} it/s "
              f"({fused_tp / plain_tp:.2f}x over unfused)")
        print(f"  throughput PETSc  : {petsc_tp:8.2f} it/s "
              f"({fused_tp / petsc_tp:.2f}x for Diffuse vs PETSc)")
        print()


if __name__ == "__main__":
    main()
