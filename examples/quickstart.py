"""Quickstart: run a cuPyNumeric-style program with and without Diffuse.

The program is the paper's motivating example (Figure 1): a 5-point
stencil over aliasing views of a distributed grid.  Running it under the
fused and unfused configurations shows three things:

* results are identical (fusion is semantics-preserving),
* Diffuse launches far fewer index tasks, and
* the modelled execution time drops accordingly.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro.frontend.cunumeric as cn
from repro.experiments.harness import scaled_machine
from repro.frontend.legate import runtime_context

#: Iterations excluded from the timing (JIT compilation happens here).
WARMUP = 3


def stencil(num_gpus: int, fusion: bool, size: int = 256, iterations: int = 10):
    """Run the Figure 1 stencil and return (result, context)."""
    machine = scaled_machine(num_gpus, bandwidth_scale=1e-5)
    with runtime_context(num_gpus=num_gpus, fusion=fusion, machine=machine) as context:
        cn.random.seed(0)
        grid = cn.random.rand(size + 2, size + 2)

        # Aliasing views of the distributed grid array.
        center = grid[1:-1, 1:-1]
        north = grid[0:-2, 1:-1]
        east = grid[1:-1, 2:]
        west = grid[1:-1, 0:-2]
        south = grid[2:, 1:-1]

        for _ in range(WARMUP + iterations):
            context.begin_iteration()
            avg = center + north + east + west + south
            work = 0.2 * avg
            center[:] = work
            context.flush()
        return grid.to_numpy(), context


def main() -> None:
    fused_result, fused_ctx = stencil(num_gpus=4, fusion=True)
    unfused_result, unfused_ctx = stencil(num_gpus=4, fusion=False)

    assert np.allclose(fused_result, unfused_result), "fusion changed the answer!"

    fused_throughput = fused_ctx.profiler.throughput(skip_warmup=WARMUP)
    unfused_throughput = unfused_ctx.profiler.throughput(skip_warmup=WARMUP)
    print("5-point stencil on a 258x258 grid, 4 simulated GPUs, 10 timed iterations")
    print(f"  identical results with and without Diffuse: "
          f"{np.allclose(fused_result, unfused_result)}")
    print(f"  index tasks launched  (unfused): {unfused_ctx.profiler.total_index_tasks}")
    print(f"  index tasks launched  (fused)  : {fused_ctx.profiler.total_index_tasks}")
    print(f"  steady-state throughput, unfused: {unfused_throughput:8.2f} iterations/s")
    print(f"  steady-state throughput, fused  : {fused_throughput:8.2f} iterations/s")
    print(f"  modelled speedup from task + kernel fusion: "
          f"{fused_throughput / unfused_throughput:.2f}x")


if __name__ == "__main__":
    main()
